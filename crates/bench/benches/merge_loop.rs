//! Criterion bench: the per-candidate trial of the merge loop — what a
//! shortlist evaluation costs per candidate.
//!
//! Two implementations of the same trial run over the same candidate
//! shortlist on the **largest** bundled benchmark:
//!
//! * `txn`   — the transactional path: apply the merger in place
//!   through a [`StateTxn`] journal, price the merged state, roll back
//!   by replaying the journal;
//! * `clone` — the seed's formulation, preserved in
//!   [`hlts_core::oracle`]: deep-copy the whole design state (graph
//!   included), merge the copy, price it, drop it.
//!
//! The run **asserts** the PR's acceptance criterion: the transactional
//! trial is ≥ 2× faster than the clone trial, and both price every
//! candidate identically.
//!
//! [`StateTxn`]: hlts_core::StateTxn

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hlts_core::{oracle, trial_merge, DesignState, MergeKind, OrderStrategy};
use hlts_dfg::Dfg;

/// The strategy Algorithm 1 runs with.
const STRATEGY: OrderStrategy = OrderStrategy::CoEnhancement;

/// `merge_loop/txn/ewf` median on main immediately before the arena
/// refactor (CSR adjacency, merge scratch, pooled journals/deltas),
/// measured by this same harness. The arena gate below holds the
/// refactor to ≥ 2x against this pin.
const PRE_ARENA_TXN_NS: f64 = 180_130.0;

/// Pass-through allocator tallying this thread's allocations, so the
/// emitted report can state allocations per steady-state trial.
struct CountingAlloc;

thread_local! {
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_CALLS: Cell<u64> = const { Cell::new(0) };
}

fn tally(bytes: usize) {
    // try_with: an allocation during TLS teardown is served, not counted.
    let _ = TL_BYTES.try_with(|b| b.set(b.get() + bytes as u64));
    let _ = TL_CALLS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        tally(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        tally(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        tally(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// This thread's allocation (bytes, calls) while running `f`.
fn alloc_delta<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let b0 = TL_BYTES.with(Cell::get);
    let c0 = TL_CALLS.with(Cell::get);
    let r = f();
    (
        TL_BYTES.with(Cell::get) - b0,
        TL_CALLS.with(Cell::get) - c0,
        r,
    )
}

fn largest_benchmark() -> (&'static str, Dfg) {
    hlts_benchmarks::all()
        .into_iter()
        .max_by_key(|(_, d)| d.num_ops())
        .expect("bundled benchmarks")
}

/// A candidate shortlist in the shape the ΔC loop evaluates: the first
/// feasible module pairs and register pairs (capped like the paper's
/// `k`-element shortlist).
fn shortlist(state: &mut DesignState, k: usize) -> Vec<MergeKind> {
    let mut out = Vec::new();
    let mods: Vec<_> = state.allocation.modules().map(|m| m.id()).collect();
    'mods: for i in 0..mods.len() {
        for j in (i + 1)..mods.len() {
            let kind = MergeKind::Modules(mods[i], mods[j]);
            if trial_merge(state, kind, STRATEGY, |_| Some(0.0)).is_some() {
                out.push(kind);
                if out.len() >= k {
                    break 'mods;
                }
            }
        }
    }
    let regs: Vec<_> = state.allocation.registers().map(|r| r.id()).collect();
    'regs: for i in 0..regs.len() {
        for j in (i + 1)..regs.len() {
            let kind = MergeKind::Registers(regs[i], regs[j]);
            if trial_merge(state, kind, STRATEGY, |_| Some(0.0)).is_some() {
                out.push(kind);
                if out.len() >= 2 * k {
                    break 'regs;
                }
            }
        }
    }
    out
}

/// One transactional trial: apply in place, price, roll back.
fn txn_trial(state: &mut DesignState, kind: MergeKind) -> Option<f64> {
    trial_merge(state, kind, STRATEGY, |t| {
        Some(t.schedule.num_steps() as f64)
    })
}

/// One clone trial, the seed's cost profile: deep-copy the state, merge
/// the copy through the clone oracle, price, drop.
fn clone_trial(state: &DesignState, kind: MergeKind) -> Option<f64> {
    let mut work = state.deep_trial_clone();
    let ok = match kind {
        MergeKind::Modules(a, b) => oracle::merge_modules_cloned(&mut work, a, b, STRATEGY).is_ok(),
        MergeKind::Registers(a, b) => {
            oracle::merge_registers_cloned(&mut work, a, b, STRATEGY).is_ok()
        }
    };
    ok.then(|| work.schedule.num_steps() as f64)
}

fn merge_loop(c: &mut Criterion) {
    let (name, dfg) = largest_benchmark();
    let mut state = DesignState::initial(&dfg).expect("initial state");
    let cands = shortlist(&mut state, 4);
    assert!(!cands.is_empty(), "{name}: no feasible candidate mergers");

    // Both trial paths must price every shortlist candidate identically.
    for &kind in &cands {
        assert_eq!(
            txn_trial(&mut state, kind),
            clone_trial(&state, kind),
            "{name}: txn and clone trials disagree on {kind:?}"
        );
    }

    let mut group = c.benchmark_group("merge_loop");
    group.bench_with_input(BenchmarkId::new("txn", name), &cands, |b, cands| {
        b.iter(|| {
            for &kind in cands {
                black_box(txn_trial(&mut state, kind));
            }
        })
    });
    let state = DesignState::initial(&dfg).expect("initial state");
    group.bench_with_input(BenchmarkId::new("clone", name), &cands, |b, cands| {
        b.iter(|| {
            for &kind in cands {
                black_box(clone_trial(&state, kind));
            }
        })
    });
    group.finish();
}

/// Noise guard: the recorded medians come from one measurement pass
/// each, so a scheduler hiccup can sink the ratio below the gate even
/// when the steady-state speedup clears it comfortably. Re-time both
/// trial paths with interleaved batches and take the median ratio.
fn remeasure() -> f64 {
    let (_, dfg) = largest_benchmark();
    let mut state = DesignState::initial(&dfg).expect("initial state");
    let cands = shortlist(&mut state, 4);
    let batch = |f: &mut dyn FnMut()| {
        let t = std::time::Instant::now();
        for _ in 0..64 {
            f();
        }
        t.elapsed().as_secs_f64()
    };
    let base = DesignState::initial(&dfg).expect("initial state");
    let mut ratios: Vec<f64> = (0..9)
        .map(|_| {
            let cl = batch(&mut || {
                for &kind in &cands {
                    black_box(clone_trial(&base, kind));
                }
            });
            let tx = batch(&mut || {
                for &kind in &cands {
                    black_box(txn_trial(&mut state, kind));
                }
            });
            cl / tx
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ratios[ratios.len() / 2]
}

fn verify_speedup(c: &mut Criterion) {
    println!();
    let (name, _) = largest_benchmark();
    let txn = c
        .median_ns(&format!("merge_loop/txn/{name}"))
        .expect("txn ran");
    let clone = c
        .median_ns(&format!("merge_loop/clone/{name}"))
        .expect("clone ran");
    let mut s = clone / txn;
    println!("speedup {name:<28} txn trial vs clone trial {s:6.1}x");
    if s < 2.0 {
        s = remeasure();
        println!("speedup {name:<28} re-measured {s:6.1}x");
    }
    assert!(
        s >= 2.0,
        "acceptance criterion violated: transactional trials are only {s:.2}x \
         the clone trials on {name} (need >= 2x)"
    );
    println!("acceptance: txn >= 2x clone trials on {name} — OK ({s:.1}x)");
}

/// Re-time the transactional trial loop alone (median of 9 batches),
/// for the arena gate's noise guard.
fn remeasure_txn_ns() -> f64 {
    let (_, dfg) = largest_benchmark();
    let mut state = DesignState::initial(&dfg).expect("initial state");
    let cands = shortlist(&mut state, 4);
    let mut ns: Vec<f64> = (0..9)
        .map(|_| {
            let t = std::time::Instant::now();
            for _ in 0..64 {
                for &kind in &cands {
                    black_box(txn_trial(&mut state, kind));
                }
            }
            t.elapsed().as_secs_f64() * 1e9 / 64.0
        })
        .collect();
    ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ns[ns.len() / 2]
}

/// The arena acceptance gate: the transactional trial must be ≥ 2x
/// faster than the pre-arena pinned median (see [`PRE_ARENA_TXN_NS`]).
fn verify_arena_speedup(c: &mut Criterion) {
    let (name, _) = largest_benchmark();
    let txn = c
        .median_ns(&format!("merge_loop/txn/{name}"))
        .expect("txn ran");
    let mut s = PRE_ARENA_TXN_NS / txn;
    println!("speedup {name:<28} arena txn trial vs pre-arena pin {s:6.1}x");
    if s < 2.0 {
        s = PRE_ARENA_TXN_NS / remeasure_txn_ns();
        println!("speedup {name:<28} re-measured {s:6.1}x");
    }
    assert!(
        s >= 2.0,
        "arena acceptance criterion violated: transactional trials on {name} are \
         only {s:.2}x the pre-arena pinned {PRE_ARENA_TXN_NS} ns (need >= 2x)"
    );
    println!("acceptance: arena txn >= 2x pre-arena pin on {name} — OK ({s:.1}x)");
}

/// Feasible candidates whose ordering is forced by the precedence
/// relation (no SR2 merit probe, hence no ETPN lowering): the
/// steady-state shape whose allocation count the report states per
/// benchmark. Mirrors `tests/zero_alloc.rs`.
fn forced_shortlist(state: &mut DesignState, k: usize) -> Vec<MergeKind> {
    let mut out = Vec::new();
    let mods: Vec<(_, _)> = state
        .allocation
        .modules()
        .map(|m| (m.id(), m.ops()[0]))
        .collect();
    'mods: for i in 0..mods.len() {
        for j in (i + 1)..mods.len() {
            let ((ma, oa), (mb, ob)) = (mods[i], mods[j]);
            if !(state.dfg.reaches(oa, ob) || state.dfg.reaches(ob, oa)) {
                continue;
            }
            let kind = MergeKind::Modules(ma, mb);
            if trial_merge(state, kind, STRATEGY, |_| Some(0.0)).is_some() {
                out.push(kind);
                if out.len() >= k {
                    break 'mods;
                }
            }
        }
    }
    let module_cands = out.len();
    let regs: Vec<(_, _)> = state
        .allocation
        .registers()
        .map(|r| (r.id(), r.values()[0]))
        .collect();
    'regs: for i in 0..regs.len() {
        for j in (i + 1)..regs.len() {
            let ((ra, va), (rb, vb)) = (regs[i], regs[j]);
            let forced = match (state.dfg.def_of(va), state.dfg.def_of(vb)) {
                (Some(da), Some(db)) => state.dfg.reaches(da, db) || state.dfg.reaches(db, da),
                _ => false,
            };
            if !forced {
                continue;
            }
            let kind = MergeKind::Registers(ra, rb);
            if trial_merge(state, kind, STRATEGY, |_| Some(0.0)).is_some() {
                out.push(kind);
                if out.len() >= module_cands + k {
                    break 'regs;
                }
            }
        }
    }
    out
}

/// Steady-state forced-trial figures for one graph: (median ns/trial,
/// allocations/trial, bytes/trial, candidate count).
fn forced_trial_stats(dfg: &Dfg) -> Option<(f64, f64, f64, usize)> {
    let mut state = DesignState::initial(dfg).ok()?;
    let cands = forced_shortlist(&mut state, 4);
    if cands.is_empty() {
        return None;
    }
    for _ in 0..3 {
        for &kind in &cands {
            black_box(txn_trial(&mut state, kind));
        }
    }
    let rounds = 32usize;
    let trials = (rounds * cands.len()) as f64;
    let mut ns = Vec::new();
    let (mut bytes, mut calls) = (0u64, 0u64);
    for _ in 0..9 {
        let t = std::time::Instant::now();
        let (b, c, ()) = alloc_delta(|| {
            for _ in 0..rounds {
                for &kind in &cands {
                    black_box(txn_trial(&mut state, kind));
                }
            }
        });
        ns.push(t.elapsed().as_secs_f64() * 1e9 / trials);
        bytes += b;
        calls += c;
    }
    ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let med = ns[ns.len() / 2];
    let total = trials * 9.0;
    Some((med, calls as f64 / total, bytes as f64 / total, cands.len()))
}

/// Write `BENCH_arena.json`: the headline gate figures plus, per
/// bundled benchmark, the steady-state forced-trial median and its
/// allocation rate (0 allocs/trial is the arena refactor's claim).
fn emit_arena_json(c: &mut Criterion) {
    let (largest, _) = largest_benchmark();
    let txn = c
        .median_ns(&format!("merge_loop/txn/{largest}"))
        .expect("txn ran");
    let clone = c
        .median_ns(&format!("merge_loop/clone/{largest}"))
        .expect("clone ran");
    let mut rows = String::new();
    for (name, dfg) in hlts_benchmarks::all() {
        let Some((med, allocs, bytes, cands)) = forced_trial_stats(&dfg) else {
            println!("BENCH_arena: {name}: no forced candidates, skipped");
            continue;
        };
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"benchmark\": \"{name}\", \"forced_trial_median_ns\": {med:.1}, \
             \"allocs_per_trial\": {allocs}, \"bytes_per_trial\": {bytes}, \
             \"candidates\": {cands}}}"
        ));
    }
    let json = format!(
        "{{\n  \"pinned_pre_arena_txn_ns\": {PRE_ARENA_TXN_NS},\n  \
         \"txn_trial_median_ns\": {txn:.1},\n  \
         \"clone_trial_median_ns\": {clone:.1},\n  \
         \"speedup_vs_pre_arena\": {:.2},\n  \
         \"largest_benchmark\": \"{largest}\",\n  \
         \"steady_state\": [\n{rows}\n  ]\n}}\n",
        PRE_ARENA_TXN_NS / txn
    );
    let path = "BENCH_arena.json";
    std::fs::write(path, &json).expect("write BENCH_arena.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    merge_loop,
    verify_speedup,
    verify_arena_speedup,
    emit_arena_json
);
criterion_main!(benches);
