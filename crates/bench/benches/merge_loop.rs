//! Criterion bench: the per-candidate trial of the merge loop — what a
//! shortlist evaluation costs per candidate.
//!
//! Two implementations of the same trial run over the same candidate
//! shortlist on the **largest** bundled benchmark:
//!
//! * `txn`   — the transactional path: apply the merger in place
//!   through a [`StateTxn`] journal, price the merged state, roll back
//!   by replaying the journal;
//! * `clone` — the seed's formulation, preserved in
//!   [`hlts_core::oracle`]: deep-copy the whole design state (graph
//!   included), merge the copy, price it, drop it.
//!
//! The run **asserts** the PR's acceptance criterion: the transactional
//! trial is ≥ 2× faster than the clone trial, and both price every
//! candidate identically.
//!
//! [`StateTxn`]: hlts_core::StateTxn

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hlts_core::{oracle, trial_merge, DesignState, MergeKind, OrderStrategy};
use hlts_dfg::Dfg;

/// The strategy Algorithm 1 runs with.
const STRATEGY: OrderStrategy = OrderStrategy::CoEnhancement;

fn largest_benchmark() -> (&'static str, Dfg) {
    hlts_benchmarks::all()
        .into_iter()
        .max_by_key(|(_, d)| d.num_ops())
        .expect("bundled benchmarks")
}

/// A candidate shortlist in the shape the ΔC loop evaluates: the first
/// feasible module pairs and register pairs (capped like the paper's
/// `k`-element shortlist).
fn shortlist(state: &mut DesignState, k: usize) -> Vec<MergeKind> {
    let mut out = Vec::new();
    let mods: Vec<_> = state.allocation.modules().map(|m| m.id()).collect();
    'mods: for i in 0..mods.len() {
        for j in (i + 1)..mods.len() {
            let kind = MergeKind::Modules(mods[i], mods[j]);
            if trial_merge(state, kind, STRATEGY, |_| Some(0.0)).is_some() {
                out.push(kind);
                if out.len() >= k {
                    break 'mods;
                }
            }
        }
    }
    let regs: Vec<_> = state.allocation.registers().map(|r| r.id()).collect();
    'regs: for i in 0..regs.len() {
        for j in (i + 1)..regs.len() {
            let kind = MergeKind::Registers(regs[i], regs[j]);
            if trial_merge(state, kind, STRATEGY, |_| Some(0.0)).is_some() {
                out.push(kind);
                if out.len() >= 2 * k {
                    break 'regs;
                }
            }
        }
    }
    out
}

/// One transactional trial: apply in place, price, roll back.
fn txn_trial(state: &mut DesignState, kind: MergeKind) -> Option<f64> {
    trial_merge(state, kind, STRATEGY, |t| {
        Some(t.schedule.num_steps() as f64)
    })
}

/// One clone trial, the seed's cost profile: deep-copy the state, merge
/// the copy through the clone oracle, price, drop.
fn clone_trial(state: &DesignState, kind: MergeKind) -> Option<f64> {
    let mut work = state.deep_trial_clone();
    let ok = match kind {
        MergeKind::Modules(a, b) => oracle::merge_modules_cloned(&mut work, a, b, STRATEGY).is_ok(),
        MergeKind::Registers(a, b) => {
            oracle::merge_registers_cloned(&mut work, a, b, STRATEGY).is_ok()
        }
    };
    ok.then(|| work.schedule.num_steps() as f64)
}

fn merge_loop(c: &mut Criterion) {
    let (name, dfg) = largest_benchmark();
    let mut state = DesignState::initial(&dfg).expect("initial state");
    let cands = shortlist(&mut state, 4);
    assert!(!cands.is_empty(), "{name}: no feasible candidate mergers");

    // Both trial paths must price every shortlist candidate identically.
    for &kind in &cands {
        assert_eq!(
            txn_trial(&mut state, kind),
            clone_trial(&state, kind),
            "{name}: txn and clone trials disagree on {kind:?}"
        );
    }

    let mut group = c.benchmark_group("merge_loop");
    group.bench_with_input(BenchmarkId::new("txn", name), &cands, |b, cands| {
        b.iter(|| {
            for &kind in cands {
                black_box(txn_trial(&mut state, kind));
            }
        })
    });
    let state = DesignState::initial(&dfg).expect("initial state");
    group.bench_with_input(BenchmarkId::new("clone", name), &cands, |b, cands| {
        b.iter(|| {
            for &kind in cands {
                black_box(clone_trial(&state, kind));
            }
        })
    });
    group.finish();
}

/// Noise guard: the recorded medians come from one measurement pass
/// each, so a scheduler hiccup can sink the ratio below the gate even
/// when the steady-state speedup clears it comfortably. Re-time both
/// trial paths with interleaved batches and take the median ratio.
fn remeasure() -> f64 {
    let (_, dfg) = largest_benchmark();
    let mut state = DesignState::initial(&dfg).expect("initial state");
    let cands = shortlist(&mut state, 4);
    let batch = |f: &mut dyn FnMut()| {
        let t = std::time::Instant::now();
        for _ in 0..64 {
            f();
        }
        t.elapsed().as_secs_f64()
    };
    let base = DesignState::initial(&dfg).expect("initial state");
    let mut ratios: Vec<f64> = (0..9)
        .map(|_| {
            let cl = batch(&mut || {
                for &kind in &cands {
                    black_box(clone_trial(&base, kind));
                }
            });
            let tx = batch(&mut || {
                for &kind in &cands {
                    black_box(txn_trial(&mut state, kind));
                }
            });
            cl / tx
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ratios[ratios.len() / 2]
}

fn verify_speedup(c: &mut Criterion) {
    println!();
    let (name, _) = largest_benchmark();
    let txn = c
        .median_ns(&format!("merge_loop/txn/{name}"))
        .expect("txn ran");
    let clone = c
        .median_ns(&format!("merge_loop/clone/{name}"))
        .expect("clone ran");
    let mut s = clone / txn;
    println!("speedup {name:<28} txn trial vs clone trial {s:6.1}x");
    if s < 2.0 {
        s = remeasure();
        println!("speedup {name:<28} re-measured {s:6.1}x");
    }
    assert!(
        s >= 2.0,
        "acceptance criterion violated: transactional trials are only {s:.2}x \
         the clone trials on {name} (need >= 2x)"
    );
    println!("acceptance: txn >= 2x clone trials on {name} — OK ({s:.1}x)");
}

criterion_group!(benches, merge_loop, verify_speedup);
criterion_main!(benches);
