//! Criterion bench: fault-simulation and PODEM throughput on the
//! elaborated Ex design (the dominant cost of the tables' ATPG column).

use criterion::{criterion_group, criterion_main, Criterion};
use hlts_atpg::{FaultSimulator, FaultUniverse, Podem};
use hlts_bench::Flow;
use hlts_etpn::Etpn;
use hlts_netlist::elaborate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn atpg(c: &mut Criterion) {
    let dfg = hlts_benchmarks::ex();
    let r = Flow::Ours.run(&dfg, 8).expect("synthesis succeeds");
    let etpn = Etpn::from_parts(&r.dfg, &r.schedule, &r.allocation).expect("lowerable");
    let nl = elaborate(&r.dfg, &r.schedule, &r.allocation, &etpn, 8).expect("elaborates");
    let universe = FaultUniverse::collapsed(&nl).sampled(200, 1);
    let faults = universe.faults().to_vec();
    let mut rng = StdRng::seed_from_u64(2);
    let seq: Vec<Vec<u64>> = (0..10)
        .map(|_| (0..nl.inputs().len()).map(|_| rng.gen()).collect())
        .collect();

    c.bench_function("fault_sim_ex_200_faults_10_cycles", |b| {
        b.iter(|| {
            let mut fs = FaultSimulator::new(nl.clone());
            let mut det = vec![false; faults.len()];
            fs.run(&seq, &faults, &mut det)
        })
    });

    c.bench_function("podem_ex_10_targets", |b| {
        b.iter(|| {
            let mut podem = Podem::new(nl.clone(), 7, 50);
            for &f in faults.iter().take(10) {
                let _ = podem.generate(f);
            }
            podem.backtracks_used()
        })
    });
}

criterion_group!(benches, atpg);
criterion_main!(benches);
