//! Bench gate: warm-start trace replay across sweep neighbours on the
//! **largest** bundled benchmark.
//!
//! A 64-point dense weight grid (32 α values × 2 β values, one
//! shortlist size) of the ewf benchmark runs twice through
//! [`hlts_dse::explore`] — once cold (`warm_start: false`) and once
//! warm (`warm_start: true`), both on one worker so the comparison is
//! pure replay-vs-research — and the run **asserts** the PR's
//! acceptance criteria:
//!
//! * the Pareto front *and every per-point result* are bit-identical
//!   between the cold and the warm sweep, always;
//! * the warm sweep replayed a nonzero number of merges from
//!   neighbour traces, always (a dense grid where nothing replays
//!   means the feature is dead);
//! * the warm sweep is ≥ 1.5× faster than the cold one, with one
//!   re-measurement as a noise guard before failing.
//!
//! Points are whole synthesis runs (seconds, not nanoseconds), so this
//! times sweeps directly with `Instant` rather than driving Criterion's
//! batch sampler, and writes the headline figures to
//! `BENCH_warmstart.json`.

use std::time::Instant;

use hlts_dse::{explore, ExploreConfig, ExploreOutcome, SweepSpec};

const SPEEDUP_GATE: f64 = 1.5;
/// Dense α sweep at two β values: neighbours differ by 0.01 in α, so
/// almost every point has a near-identical already-completed seed.
const ALPHAS: usize = 32;
const BETAS: [f64; 2] = [1.0, 1.02];

fn sweep_spec() -> (String, SweepSpec, SweepSpec) {
    let (name, dfg) = hlts_benchmarks::all()
        .into_iter()
        .max_by_key(|(_, d)| d.num_ops())
        .expect("bundled benchmarks");
    let mut cold = SweepSpec::new(vec![(name.to_owned(), dfg)]);
    cold.ks = vec![3];
    cold.weights = (0..ALPHAS)
        .flat_map(|i| {
            let alpha = 2.0 + i as f64 * 0.01;
            BETAS.iter().map(move |beta| (alpha, *beta))
        })
        .collect();
    let points = cold.points().expect("valid sweep").len();
    assert!(points >= 64, "gate needs a >=64-point sweep, got {points}");
    let mut warm = cold.clone();
    warm.warm_start = true;
    (name.to_owned(), cold, warm)
}

fn timed_sweep(spec: &SweepSpec) -> (f64, ExploreOutcome) {
    let cfg = ExploreConfig {
        jobs: 1,
        ..ExploreConfig::default()
    };
    let t = Instant::now();
    let outcome = explore(spec, &cfg).expect("sweep succeeds");
    (t.elapsed().as_secs_f64(), outcome)
}

fn main() {
    let (name, cold_spec, warm_spec) = sweep_spec();
    let points = cold_spec.points().expect("valid sweep").len();

    let (cold_secs, cold) = timed_sweep(&cold_spec);
    let (warm_secs, warm) = timed_sweep(&warm_spec);
    println!(
        "warmstart/explore/{name}  {points} points: cold {cold_secs:.2}s, warm {warm_secs:.2}s \
         (front {} points, {} merges replayed, {} recomputed)",
        warm.front.len(),
        warm.stats.merges_replayed,
        warm.stats.merges_recomputed,
    );

    // Conformance half of the gate: unconditional. Equal signatures
    // mean bit-identical fronts; equal results pin every objective of
    // every point, not just the front.
    assert_eq!(
        cold.front_signature(),
        warm.front_signature(),
        "acceptance criterion violated: the {name} Pareto front diverges \
         between cold and warm-start sweeps"
    );
    assert_eq!(
        cold.results, warm.results,
        "acceptance criterion violated: a {name} per-point result diverges \
         between cold and warm-start sweeps"
    );
    println!("acceptance: front and per-point results bit-identical cold vs warm on {name} — OK");

    assert!(
        warm.stats.merges_replayed > 0,
        "acceptance criterion violated: the warm {name} sweep replayed no merges \
         ({} recomputed) — the trace seeding is dead",
        warm.stats.merges_recomputed,
    );
    println!(
        "acceptance: nonzero replay on {name} — OK ({} replayed, {} recomputed)",
        warm.stats.merges_replayed, warm.stats.merges_recomputed,
    );

    // Throughput half, with one re-measurement as a noise guard: a
    // sweep is tens of seconds, so a single retry is cheap relative to
    // a false negative.
    let mut speedup = cold_secs / warm_secs;
    println!("speedup warmstart/explore/{name:<10} warm vs cold {speedup:6.2}x");
    if speedup < SPEEDUP_GATE {
        let (c, _) = timed_sweep(&cold_spec);
        let (w, _) = timed_sweep(&warm_spec);
        speedup = c / w;
        println!("speedup warmstart/explore/{name:<10} re-measured {speedup:6.2}x");
    }
    assert!(
        speedup >= SPEEDUP_GATE,
        "acceptance criterion violated: the warm {name} sweep is only {speedup:.2}x \
         the cold one (need >= {SPEEDUP_GATE}x)"
    );
    println!("acceptance: warm sweep >= {SPEEDUP_GATE}x cold on {name} — OK ({speedup:.2}x)");

    let json = format!(
        "{{\n  \"benchmark\": \"{name}\",\n  \"points\": {points},\n  \
         \"cold_secs\": {cold_secs:.3},\n  \"warm_secs\": {warm_secs:.3},\n  \
         \"merges_replayed\": {},\n  \"merges_recomputed\": {},\n  \
         \"speedup\": {speedup:.2},\n  \"speedup_gate\": {SPEEDUP_GATE},\n  \
         \"front_size\": {},\n  \"bit_identical\": true\n}}\n",
        warm.stats.merges_replayed,
        warm.stats.merges_recomputed,
        warm.front.len(),
    );
    let path = "BENCH_warmstart.json";
    std::fs::write(path, &json).expect("write BENCH_warmstart.json");
    println!("wrote {path}");
}
