//! Bench gate: parallel design-space exploration on the **largest**
//! bundled benchmark.
//!
//! A 24-point sweep (6 shortlist sizes × 4 weight pairs) of the ewf
//! benchmark runs twice through [`hlts_dse::explore`] — once on one
//! worker, once on four — and the run **asserts** the PR's acceptance
//! criteria:
//!
//! * the Pareto fronts (and every per-point result) are bit-identical
//!   across worker counts, always;
//! * the parallel sweep is ≥ 2× faster than the sequential one —
//!   checked only when the machine actually has ≥ 2 CPUs (a worker
//!   pool cannot beat physics on a single core; the gate prints a
//!   skip note there instead).
//!
//! Points are whole synthesis runs (seconds, not nanoseconds), so this
//! times sweeps directly with `Instant` rather than driving Criterion's
//! batch sampler through ~50 extra runs.

use std::time::Instant;

use hlts_dse::{explore, ExploreConfig, ExploreOutcome, SweepSpec};

const SPEEDUP_GATE: f64 = 2.0;

fn sweep_spec() -> (String, SweepSpec) {
    let (name, dfg) = hlts_benchmarks::all()
        .into_iter()
        .max_by_key(|(_, d)| d.num_ops())
        .expect("bundled benchmarks");
    let mut spec = SweepSpec::new(vec![(name.to_owned(), dfg)]);
    spec.ks = vec![1, 2, 3, 4, 5, 8];
    spec.weights = vec![(2.0, 1.0), (10.0, 1.0), (1.0, 10.0), (0.1, 10.0)];
    let points = spec.points().expect("valid sweep").len();
    assert!(points >= 24, "gate needs a >=24-point sweep, got {points}");
    (name.to_owned(), spec)
}

fn timed_sweep(spec: &SweepSpec, jobs: usize) -> (f64, ExploreOutcome) {
    let cfg = ExploreConfig {
        jobs,
        ..ExploreConfig::default()
    };
    let t = Instant::now();
    let outcome = explore(spec, &cfg).expect("sweep succeeds");
    (t.elapsed().as_secs_f64(), outcome)
}

fn main() {
    let (name, spec) = sweep_spec();
    let points = spec.points().expect("valid sweep").len();

    let (seq_secs, seq) = timed_sweep(&spec, 1);
    let (par_secs, par) = timed_sweep(&spec, 4);
    println!(
        "dse/explore/{name}  {points} points: sequential {:.2}s, 4 workers {:.2}s \
         (front {} points, testability cache {} hits / {} misses)",
        seq_secs,
        par_secs,
        par.front.len(),
        par.stats.testability.hits,
        par.stats.testability.misses,
    );

    // Determinism half of the gate: unconditional.
    assert_eq!(
        seq.front_signature(),
        par.front_signature(),
        "acceptance criterion violated: the {name} Pareto front diverges \
         between 1 and 4 workers"
    );
    assert_eq!(seq.results, par.results, "per-point results diverged");
    println!("acceptance: front bit-identical across 1 and 4 workers on {name} — OK");

    // Throughput half: only meaningful when the pool can actually run
    // workers side by side.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cpus < 2 {
        println!(
            "acceptance: parallel >= {SPEEDUP_GATE}x sequential — SKIPPED \
             (host has {cpus} CPU; a pool cannot outrun one core)"
        );
        return;
    }
    let mut speedup = seq_secs / par_secs;
    println!("speedup dse/explore/{name:<17} 4 workers vs 1 {speedup:6.1}x");
    if speedup < SPEEDUP_GATE {
        // Noise guard: one re-measurement before failing the gate — a
        // sweep is seconds long, so a single retry is cheap relative
        // to a false negative.
        let (s, _) = timed_sweep(&spec, 1);
        let (p, _) = timed_sweep(&spec, 4);
        speedup = s / p;
        println!("speedup dse/explore/{name:<17} re-measured {speedup:6.1}x");
    }
    assert!(
        speedup >= SPEEDUP_GATE,
        "acceptance criterion violated: the parallel sweep is only {speedup:.2}x \
         the sequential one on {name} with {cpus} CPUs (need >= {SPEEDUP_GATE}x)"
    );
    println!("acceptance: parallel explore >= {SPEEDUP_GATE}x sequential on {name} — OK ({speedup:.1}x)");
}
