//! Bench: runtime of the synthesis flows on the six benchmarks, plus
//! the sequential-vs-parallel candidate evaluation comparison on the
//! paper's EX/DCT/DIFFEQ tables.
//!
//! The run **asserts** that the parallel k-candidate evaluation
//! produces a `SynthesisResult` bit-identical to the sequential path
//! on EX, DCT and DIFFEQ (the PR's acceptance criterion) — same
//! schedule, binding, metrics and merge log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hlts_bench::Flow;
use hlts_core::{EvalMode, IntegratedSynthesizer, SynthesisParams};

fn flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for (name, dfg) in hlts_benchmarks::all() {
        for flow in Flow::all() {
            group.bench_with_input(
                BenchmarkId::new(flow.label().replace(' ', "_"), name),
                &dfg,
                |b, dfg| b.iter(|| flow.run(dfg, 8).expect("synthesis succeeds")),
            );
        }
    }
    group.finish();
}

fn seq_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_eval");
    group.sample_size(10);
    for (name, dfg) in [
        ("ex", hlts_benchmarks::ex()),
        ("dct", hlts_benchmarks::dct()),
        ("diffeq", hlts_benchmarks::diffeq()),
    ] {
        let synth = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8));
        let seq = synth
            .run_mode(&dfg, EvalMode::Sequential)
            .expect("sequential synthesis");
        let par = synth
            .run_mode(&dfg, EvalMode::Parallel)
            .expect("parallel synthesis");
        assert_eq!(
            seq, par,
            "{name}: parallel candidate evaluation diverged from sequential"
        );
        group.bench_with_input(BenchmarkId::new("sequential", name), &dfg, |b, dfg| {
            b.iter(|| synth.run_mode(dfg, EvalMode::Sequential).expect("synthesis"))
        });
        group.bench_with_input(BenchmarkId::new("parallel", name), &dfg, |b, dfg| {
            b.iter(|| synth.run_mode(dfg, EvalMode::Parallel).expect("synthesis"))
        });
    }
    group.finish();
    println!("\nacceptance: sequential == parallel SynthesisResult on ex/dct/diffeq — OK");
}

criterion_group!(benches, flows, seq_vs_parallel);
criterion_main!(benches);
