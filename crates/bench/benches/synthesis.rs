//! Criterion bench: runtime of the four synthesis flows on the six
//! benchmarks (the algorithmic cost of Tables 1–3's synthesis column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hlts_bench::Flow;

fn synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for (name, dfg) in hlts_benchmarks::all() {
        for flow in Flow::all() {
            group.bench_with_input(
                BenchmarkId::new(flow.label().replace(' ', "_"), name),
                &dfg,
                |b, dfg| b.iter(|| flow.run(dfg, 8).expect("synthesis succeeds")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, synthesis);
criterion_main!(benches);
