//! Bench gate: fault-partitioned parallel coverage grading on the
//! **largest** bundled benchmark.
//!
//! One full `grade` — elaborate-once, then the random phase and the
//! deterministic (PODEM) phase over a 2500-fault sample of the
//! collapsed fault list — runs twice on the ewf netlist, once on one
//! worker and once on four, and the run **asserts** the PR's
//! acceptance criteria:
//!
//! * the [`CoverageReport`]s are bit-identical across worker counts
//!   (compared by [`CoverageReport::signature`]), always;
//! * the parallel grade is ≥ 2× faster than the serial one — checked
//!   only when the machine actually has ≥ 2 CPUs (fault partitions
//!   cannot beat physics on a single core; the gate prints a skip
//!   note there instead).
//!
//! A grade is whole seconds of work, so this times runs directly with
//! `Instant` rather than driving Criterion's batch sampler, and writes
//! the headline figures to `BENCH_tcov.json`.

use std::time::Instant;

use hlts_core::{IntegratedSynthesizer, RunCtl, SynthesisParams};
use hlts_etpn::Etpn;
use hlts_netlist::{elaborate, Netlist};
use hlts_tcov::{grade, CoverageReport, TcovConfig};

const SPEEDUP_GATE: f64 = 2.0;
const BITS: u32 = 8;
const PARALLEL_JOBS: usize = 4;
/// Big enough that each of the four partitions is still thousands of
/// simulations deep; small enough that the gate stays tens of seconds.
const FAULT_SAMPLE: usize = 2500;

/// Synthesize the largest bundled benchmark with the paper defaults
/// and elaborate the bound design to gates.
fn largest_elaborated() -> (String, Netlist, usize) {
    let (name, dfg) = hlts_benchmarks::all()
        .into_iter()
        .max_by_key(|(_, d)| d.num_ops())
        .expect("bundled benchmarks");
    let result = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(BITS))
        .run(&dfg)
        .expect("synthesis succeeds");
    let etpn = Etpn::from_parts(&result.dfg, &result.schedule, &result.allocation)
        .expect("etpn builds");
    let nl = elaborate(
        &result.dfg,
        &result.schedule,
        &result.allocation,
        &etpn,
        BITS,
    )
    .expect("elaboration succeeds");
    (name.to_owned(), nl, result.schedule.num_steps())
}

fn timed_grade(nl: &Netlist, steps: usize, jobs: usize) -> (f64, CoverageReport) {
    let cfg = TcovConfig::for_schedule(steps, Some(FAULT_SAMPLE), jobs);
    let t = Instant::now();
    let report = grade(nl, &cfg, &RunCtl::none()).expect("grades");
    (t.elapsed().as_secs_f64(), report)
}

fn main() {
    let (name, nl, steps) = largest_elaborated();

    let (serial_secs, serial) = timed_grade(&nl, steps, 1);
    let (parallel_secs, parallel) = timed_grade(&nl, steps, PARALLEL_JOBS);
    println!(
        "tcov/grade/{name}  {} gates, {} faults: serial {:.2}s, {PARALLEL_JOBS} workers {:.2}s \
         (coverage {:.2}%, {} random + {} deterministic)",
        serial.gates,
        serial.faults_graded,
        serial_secs,
        parallel_secs,
        serial.coverage(),
        serial.detected_random,
        serial.detected_deterministic,
    );

    // Conformance half of the gate: unconditional.
    assert_eq!(
        serial.signature(),
        parallel.signature(),
        "acceptance criterion violated: the {name} coverage report diverges \
         between 1 and {PARALLEL_JOBS} workers"
    );
    println!("acceptance: coverage report bit-identical across 1 and {PARALLEL_JOBS} workers on {name} — OK");

    // Throughput half: only meaningful when the partitions can
    // actually run side by side.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut speedup = serial_secs / parallel_secs;
    let mut gated = false;
    if cpus < 2 {
        println!(
            "acceptance: parallel >= {SPEEDUP_GATE}x serial — SKIPPED \
             (host has {cpus} CPU; fault partitions cannot outrun one core)"
        );
    } else {
        gated = true;
        println!("speedup tcov/grade/{name:<17} {PARALLEL_JOBS} workers vs 1 {speedup:6.1}x");
        if speedup < SPEEDUP_GATE {
            // Noise guard: one re-measurement before failing the gate —
            // a grade is seconds long, so a single retry is cheap
            // relative to a false negative.
            let (s, _) = timed_grade(&nl, steps, 1);
            let (p, _) = timed_grade(&nl, steps, PARALLEL_JOBS);
            speedup = s / p;
            println!("speedup tcov/grade/{name:<17} re-measured {speedup:6.1}x");
        }
        assert!(
            speedup >= SPEEDUP_GATE,
            "acceptance criterion violated: the parallel grade is only {speedup:.2}x \
             the serial one on {name} with {cpus} CPUs (need >= {SPEEDUP_GATE}x)"
        );
        println!(
            "acceptance: parallel grade >= {SPEEDUP_GATE}x serial on {name} — OK ({speedup:.1}x)"
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"{name}\",\n  \"gates\": {},\n  \
         \"faults_graded\": {},\n  \"coverage_pct\": {:.2},\n  \
         \"serial_secs\": {serial_secs:.3},\n  \
         \"parallel_secs\": {parallel_secs:.3},\n  \
         \"parallel_jobs\": {PARALLEL_JOBS},\n  \"speedup\": {speedup:.2},\n  \
         \"speedup_gate\": {SPEEDUP_GATE},\n  \"gate_applied\": {gated},\n  \
         \"cpus\": {cpus},\n  \"bit_identical\": true\n}}\n",
        serial.gates,
        serial.faults_graded,
        serial.coverage(),
    );
    let path = "BENCH_tcov.json";
    std::fs::write(path, &json).expect("write BENCH_tcov.json");
    println!("wrote {path}");
}
