//! Bench gate: warm daemon requests vs cold one-shot runs.
//!
//! The `hlts serve` daemon keeps a [`WarmPool`] of per-behavior
//! contexts — base design state plus the shared incremental (E, H)
//! evaluator — so a repeat request for the same behavior skips the
//! initial schedule/allocation/testability construction and hits the
//! evaluator's content-keyed cache throughout the merge loop. This
//! gate measures both paths on the **largest** bundled benchmark
//! through the same [`execute`] entry point the daemon's workers use:
//!
//! * **cold** — an unkeyed request against a disabled pool: the full
//!   one-shot `hlts run` cost, context built from scratch every time;
//! * **warm** — keyed requests against a shared pool, after one
//!   priming miss: what every repeat daemon submission pays.
//!
//! The run **asserts** the PR's acceptance criteria:
//!
//! * warm and cold requests produce bit-identical results (the warm
//!   context is a cache, never an approximation);
//! * the median warm request is ≥ 2× faster than the median cold one.
//!
//! Requests are whole synthesis runs (milliseconds, not nanoseconds),
//! so this times them directly with `Instant` rather than driving
//! Criterion's batch sampler, and writes the headline figures to
//! `BENCH_serve.json`.

use std::time::Instant;

use hlts_core::{CancelToken, EvalMode, NullSink, RunCtl, SynthesisParams};
use hlts_dse::Flow;
use hlts_jobs::{execute, proto, JobOutput, JobSpec, WarmPool};

const SPEEDUP_GATE: f64 = 2.0;
/// Timed requests per path (medians of small odd samples are robust).
const REQUESTS: usize = 7;

fn largest_benchmark() -> (String, hlts_dfg::Dfg) {
    let (name, dfg) = hlts_benchmarks::all()
        .into_iter()
        .max_by_key(|(_, d)| d.num_ops())
        .expect("bundled benchmarks");
    (name.to_owned(), dfg)
}

fn run_spec(name: &str, dfg: &hlts_dfg::Dfg, warm: Option<u64>) -> JobSpec {
    JobSpec::Run {
        name: name.to_owned(),
        dfg: dfg.clone(),
        flow: Flow::Ours,
        params: SynthesisParams::paper_defaults(8),
        // The daemon's per-job mode: pool-level parallelism only.
        mode: EvalMode::Sequential,
        warm,
        atpg: None,
    }
}

/// Median latency (seconds) of `REQUESTS` executions of `spec`
/// against `pool`, plus the (bit-identity witness) result JSON of the
/// last request.
fn timed_requests(spec: &JobSpec, pool: &WarmPool) -> (f64, String) {
    let ctl = RunCtl {
        cancel: CancelToken::new(),
        progress: &NullSink,
    };
    let mut latencies = Vec::with_capacity(REQUESTS);
    let mut witness = String::new();
    for _ in 0..REQUESTS {
        let t = Instant::now();
        let output = execute(spec, &ctl, pool).expect("request succeeds");
        latencies.push(t.elapsed().as_secs_f64());
        let JobOutput::Run(out) = output else {
            panic!("expected a run output");
        };
        witness = proto::run_result_json(&out.result);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (latencies[latencies.len() / 2], witness)
}

/// The middle warm tier, informative only: requests that share the
/// context (base state + evaluator cache) but touch a *new* parameter
/// point each time, so the memo never hits and the merge loop runs.
fn context_tier_median(name: &str, dfg: &hlts_dfg::Dfg) -> f64 {
    let pool = WarmPool::new(4);
    let ctl = RunCtl {
        cancel: CancelToken::new(),
        progress: &NullSink,
    };
    execute(&run_spec(name, dfg, Some(2)), &ctl, &pool).expect("priming request succeeds");
    let mut latencies = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        let mut spec = run_spec(name, dfg, Some(2));
        let JobSpec::Run { params, .. } = &mut spec else {
            unreachable!("run_spec builds run jobs");
        };
        // A fresh (α, β) point per request defeats the memo without
        // changing the workload's scale.
        params.beta += (i as f64 + 1.0) * 1e-9;
        let t = Instant::now();
        execute(&spec, &ctl, &pool).expect("request succeeds");
        latencies.push(t.elapsed().as_secs_f64());
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    latencies[latencies.len() / 2]
}

/// One full measurement: (cold median, warm median, witnesses).
fn measure(name: &str, dfg: &hlts_dfg::Dfg) -> (f64, f64, String, String) {
    // Cold: pool disabled, every request builds its context.
    let cold_pool = WarmPool::new(0);
    let (cold, cold_witness) = timed_requests(&run_spec(name, dfg, None), &cold_pool);
    // Warm: one priming miss, then timed hits on the shared context.
    let warm_pool = WarmPool::new(4);
    let spec = run_spec(name, dfg, Some(1));
    let ctl = RunCtl {
        cancel: CancelToken::new(),
        progress: &NullSink,
    };
    execute(&spec, &ctl, &warm_pool).expect("priming request succeeds");
    let (warm, warm_witness) = timed_requests(&spec, &warm_pool);
    let (hits, misses) = warm_pool.stats();
    assert_eq!(
        (misses, hits),
        (1, REQUESTS as u64),
        "warm pool must miss once (priming) then hit every request"
    );
    (cold, warm, cold_witness, warm_witness)
}

fn main() {
    let (name, dfg) = largest_benchmark();
    let (mut cold, mut warm, cold_witness, warm_witness) = measure(&name, &dfg);

    // Conformance half of the gate: unconditional.
    assert_eq!(
        cold_witness, warm_witness,
        "acceptance criterion violated: warm-context {name} results diverge from cold one-shot"
    );
    println!("acceptance: warm and cold results bit-identical on {name} — OK");

    let mut speedup = cold / warm;
    println!(
        "serve/request/{name}  cold {:.1} ms, warm {:.1} ms ({speedup:.1}x)",
        cold * 1e3,
        warm * 1e3,
    );
    if speedup < SPEEDUP_GATE {
        // Noise guard: one re-measurement before failing the gate.
        let (c, w, _, _) = measure(&name, &dfg);
        (cold, warm) = (c, w);
        speedup = cold / warm;
        println!(
            "serve/request/{name}  re-measured cold {:.1} ms, warm {:.1} ms ({speedup:.1}x)",
            cold * 1e3,
            warm * 1e3,
        );
    }
    assert!(
        speedup >= SPEEDUP_GATE,
        "acceptance criterion violated: a warm {name} request is only {speedup:.2}x \
         faster than a cold one (need >= {SPEEDUP_GATE}x)"
    );
    println!("acceptance: warm request >= {SPEEDUP_GATE}x cold on {name} — OK ({speedup:.1}x)");

    // Informative middle tier: context warm, memo cold.
    let context = context_tier_median(&name, &dfg);
    println!(
        "serve/request/{name}  context-warm (new parameter point) {:.1} ms ({:.1}x)",
        context * 1e3,
        cold / context,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"{name}\",\n  \"requests_per_path\": {REQUESTS},\n  \
         \"cold_median_ms\": {:.3},\n  \"warm_median_ms\": {:.3},\n  \
         \"context_warm_median_ms\": {:.3},\n  \
         \"warm_speedup\": {speedup:.2},\n  \"speedup_gate\": {SPEEDUP_GATE}\n}}\n",
        cold * 1e3,
        warm * 1e3,
        context * 1e3,
    );
    let path = "BENCH_serve.json";
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
