//! Bench: Petri-net reachability and critical-path extraction — the ΔE
//! estimator invoked per tentative merger — before and after the
//! cached critical-path engine.
//!
//! Three views per control net:
//!
//! * `fresh`  — [`ControlNet::critical_path`]: full reachability tree
//!   every call (the seed behavior, the "before" number);
//! * `chain`  — [`ControlNet::chain_critical_path`]: the single-token
//!   shortcut, uncached (what a cache **miss** costs now);
//! * `cached` — [`CriticalPathEngine::critical_path`]: the memo hit
//!   path (what repeated ΔE evaluation costs now).
//!
//! The run **asserts** the PR's acceptance criterion: on the paper's
//! EX, DCT and DIFFEQ control nets, the cached path is ≥ 2× faster
//! than the fresh path, and all three views agree on the result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hlts_core::DesignState;
use hlts_dfg::ValueId;
use hlts_etpn::{ControlNet, CriticalPathEngine};

fn bench_net(c: &mut Criterion, family: &str, param: &str, net: &ControlNet) {
    let fresh = net.critical_path();
    assert_eq!(
        net.chain_critical_path().unwrap_or(fresh),
        fresh,
        "{family}/{param}: chain shortcut disagrees with reachability"
    );
    let engine = CriticalPathEngine::new();
    assert_eq!(engine.critical_path(net), fresh, "{family}/{param}: engine");

    let mut group = c.benchmark_group(family);
    group.bench_with_input(BenchmarkId::new("fresh", param), net, |b, net| {
        b.iter(|| net.critical_path())
    });
    group.bench_with_input(BenchmarkId::new("chain", param), net, |b, net| {
        b.iter(|| net.chain_critical_path())
    });
    group.bench_with_input(BenchmarkId::new("cached", param), net, |b, net| {
        b.iter(|| engine.critical_path(net))
    });
    group.finish();
}

fn speedup(c: &Criterion, family: &str, param: &str) -> f64 {
    let fresh = c
        .median_ns(&format!("{family}/fresh/{param}"))
        .expect("fresh ran");
    let cached = c
        .median_ns(&format!("{family}/cached/{param}"))
        .expect("cached ran");
    fresh / cached
}

fn synthetic(c: &mut Criterion) {
    for steps in [4usize, 16, 64] {
        let (net, places) = ControlNet::linear(steps);
        bench_net(c, "reachability", &format!("linear_{steps}"), &net);
        let mut looped = net.clone();
        looped.add_loop_back(&places, ValueId::from_index(0));
        bench_net(c, "reachability", &format!("looped_{steps}"), &looped);
    }
}

fn paper_benchmarks(c: &mut Criterion) {
    for (name, dfg) in [
        ("ex", hlts_benchmarks::ex()),
        ("dct", hlts_benchmarks::dct()),
        ("diffeq", hlts_benchmarks::diffeq()),
    ] {
        let state = DesignState::initial(&dfg).expect("initial state");
        let etpn = state.lower().expect("lowerable");
        bench_net(c, "reachability", name, etpn.control());
    }
}

fn verify_speedup(c: &mut Criterion) {
    println!();
    let mut worst = f64::INFINITY;
    for name in ["ex", "dct", "diffeq"] {
        let s = speedup(c, "reachability", name);
        println!("speedup {name:<28} cached vs fresh  {s:6.1}x");
        worst = worst.min(s);
    }
    assert!(
        worst >= 2.0,
        "acceptance criterion violated: cached ΔE evaluation is only {worst:.2}x \
         the from-scratch reachability path (need >= 2x)"
    );
    println!("acceptance: cached >= 2x fresh on ex/dct/diffeq — OK (worst {worst:.1}x)");
}

criterion_group!(benches, synthetic, paper_benchmarks, verify_speedup);
criterion_main!(benches);
