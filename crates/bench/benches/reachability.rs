//! Criterion bench: Petri-net reachability and critical-path extraction
//! (the ΔE estimator invoked per tentative merger).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hlts_dfg::ValueId;
use hlts_etpn::ControlNet;

fn reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    for steps in [4usize, 16, 64] {
        let (net, places) = ControlNet::linear(steps);
        group.bench_with_input(BenchmarkId::new("linear", steps), &net, |b, net| {
            b.iter(|| net.critical_path())
        });
        let mut looped = net.clone();
        looped.add_loop_back(&places, ValueId::from_index(0));
        group.bench_with_input(BenchmarkId::new("looped", steps), &looped, |b, net| {
            b.iter(|| net.critical_path())
        });
    }
    group.finish();
}

criterion_group!(benches, reachability);
criterion_main!(benches);
