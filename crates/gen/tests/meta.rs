//! Meta-test of the conformance harness: a deliberately broken engine
//! must be *caught*, not tolerated.
//!
//! The harness's value rests on the engine pairs being genuinely
//! redundant — if a fault in one implementation slid through every
//! check, the whole matrix would be a rubber stamp. So this test arms
//! the `CORE_FORCE_ROLLBACK` fault site, which makes the transactional
//! trial-merge path silently discard every priced trial (the merge
//! loop then commits nothing), while the clone-based oracle — a
//! different implementation with no fault site on that path — still
//! merges. The harness must flag exactly the `txn-oracle` pair.
//!
//! Gated on `test-faults`: the fault sites are compiled to constant
//! `false` otherwise, so this file only builds meaningfully under
//! `cargo test -p hlts-gen --features test-faults`.

#![cfg(feature = "test-faults")]

use hlts_check::faults::{sites, FaultPlan};
use hlts_gen::diff::check_preset;

#[test]
fn forced_rollback_engine_is_caught_as_txn_oracle_divergence() {
    // Baseline: the chosen graph conforms and actually merges, so the
    // faulted run below diverges through lost merges, not vacuously.
    let clean = check_preset("balanced", 0).expect("unfaulted engines conform");
    assert!(
        clean.merges > 0,
        "meta-test graph must commit merges for the fault to matter"
    );

    {
        let _guard = FaultPlan::new()
            .arm(sites::CORE_FORCE_ROLLBACK, u64::MAX)
            .install();
        let err = check_preset("balanced", 0).expect_err("broken engine must be caught");
        // Parallel and sequential modes share the faulted txn path, so
        // they agree with each other (zero merges each) and the first
        // disagreement is against the independent clone oracle.
        assert_eq!(err.check, "txn-oracle", "wrong pair flagged: {err}");
        let msg = err.to_string();
        assert!(
            msg.contains("hlts gen --seed 0 --preset balanced | hlts run -"),
            "divergence must carry a one-command repro: {msg}"
        );
        assert!(
            msg.contains("dfg balanced_s0 {"),
            "divergence must carry the offending graph text: {msg}"
        );
    }

    // Guard dropped: the same (seed, preset) conforms again.
    let again = check_preset("balanced", 0).expect("engines conform after disarm");
    assert_eq!(again.merges, clean.merges);
}
