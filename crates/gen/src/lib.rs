//! Seeded random DFG workload generator and differential conformance
//! harness.
//!
//! [`generate`] grows a random — but fully reproducible — data-flow
//! graph from a `(seed, GenConfig)` pair: the RNG is the deterministic
//! xoshiro generator every other crate uses, so the same pair yields
//! the bit-identical graph on every platform and every run. The knobs
//! cover size (operation count), op mix (multiplier / adder / logic /
//! comparison / shift weights), shape (depth-vs-width bias, fan-out
//! skew), and structure (loop-carried pair count, constant-to-input
//! ratio). Every generated graph validates, schedules under ASAP and
//! lowers to ETPN by construction — [`generate`] ends in
//! `DfgBuilder::finish`, which enforces the full invariant set.
//!
//! The [`diff`] module turns a generated graph into a differential
//! test vector: it runs the full engine matrix (worklist vs. dense
//! testability, transactional merge loop vs. the clone-based oracle,
//! parallel vs. sequential ΔC evaluation, parallel vs. serial DSE
//! sweeps, and the structural auditor) and reports the first
//! divergence with a one-command repro line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

use hlts_dfg::{Dfg, DfgBuilder, DfgError, OpKind, ValueId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom as _;
use rand::{Rng as _, SeedableRng as _};

pub mod diff;

/// Errors raised by the generator.
#[derive(Debug)]
pub enum GenError {
    /// The configuration is malformed (zero ops, all-zero op weights,
    /// an out-of-range probability, an invalid base name, ...).
    Config(String),
    /// The built graph failed `DfgBuilder` validation — a generator
    /// bug by definition, since [`generate`] must only emit valid
    /// graphs.
    Dfg(DfgError),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::Config(msg) => write!(f, "invalid generator config: {msg}"),
            GenError::Dfg(e) => write!(f, "generated graph failed validation: {e}"),
        }
    }
}

impl std::error::Error for GenError {}

impl From<DfgError> for GenError {
    fn from(e: DfgError) -> Self {
        GenError::Dfg(e)
    }
}

/// Knobs of the random DFG generator. Together with a `u64` seed this
/// fully determines the generated graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Base name of the graph; the emitted graph is named
    /// `{name}_s{seed}` so every artifact names its own seed.
    pub name: String,
    /// Number of operations to generate (≥ 1).
    pub ops: usize,
    /// Number of primary inputs (≥ 1).
    pub inputs: usize,
    /// Constants per input: `round(inputs * const_ratio)` constant
    /// declarations are added (in `[0, 8]`).
    pub const_ratio: f64,
    /// Op-mix weight of the multiplier bucket (`*`).
    pub mul: u32,
    /// Op-mix weight of the adder bucket (`+`, `-`).
    pub addsub: u32,
    /// Op-mix weight of the logic bucket (`&`, `|`, `^`, `~`).
    pub logic: u32,
    /// Op-mix weight of the comparison bucket (`<`, `>`, `==`).
    pub cmp: u32,
    /// Op-mix weight of the shift/move bucket (`shl`, `shr`, `mov`).
    pub shift: u32,
    /// Probability (in `[0, 1]`) that an operand is drawn from the
    /// most recently defined values — high values grow deep chains,
    /// low values grow wide, shallow graphs.
    pub depth_bias: f64,
    /// Probability (in `[0, 1]`) that an operand pick prefers the
    /// already-popular value of two uniform candidates, skewing the
    /// fan-out distribution toward a few high-fan-out values.
    pub fanout_skew: f64,
    /// Number of loop-carried `(produced, consumed)` pairs to close
    /// (capped by the number of inputs and of data-producing ops).
    pub loop_pairs: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        // The "balanced" preset: a mid-size graph exercising every
        // statement form.
        GenConfig {
            name: "balanced".to_owned(),
            ops: 16,
            inputs: 5,
            const_ratio: 0.4,
            mul: 3,
            addsub: 4,
            logic: 2,
            cmp: 1,
            shift: 1,
            depth_bias: 0.5,
            fanout_skew: 0.3,
            loop_pairs: 1,
        }
    }
}

/// Names of the built-in configuration presets, in the order the
/// conformance sweep visits them.
pub const PRESET_NAMES: [&str; 4] = ["balanced", "deep-arith", "wide-logic", "loopy-mul"];

/// Look up a built-in preset by name (see [`PRESET_NAMES`]).
#[must_use]
pub fn preset(name: &str) -> Option<GenConfig> {
    let base = GenConfig::default();
    match name {
        "balanced" => Some(base),
        // Long multiply/accumulate chains: stresses the scheduler's
        // critical path and the multiplier-class allocator.
        "deep-arith" => Some(GenConfig {
            name: "deep_arith".to_owned(),
            ops: 24,
            inputs: 3,
            const_ratio: 0.34,
            mul: 4,
            addsub: 5,
            logic: 0,
            cmp: 0,
            shift: 0,
            depth_bias: 0.9,
            fanout_skew: 0.2,
            loop_pairs: 0,
        }),
        // Shallow, bushy logic with heavy fan-out: stresses the
        // testability propagation and the mux accounting.
        "wide-logic" => Some(GenConfig {
            name: "wide_logic".to_owned(),
            ops: 20,
            inputs: 8,
            const_ratio: 0.25,
            mul: 1,
            addsub: 2,
            logic: 5,
            cmp: 1,
            shift: 2,
            depth_bias: 0.1,
            fanout_skew: 0.6,
            loop_pairs: 0,
        }),
        // Multiplier-rich with several loop-carried pairs: the
        // diffeq-like shape where merge legality is most delicate.
        "loopy-mul" => Some(GenConfig {
            name: "loopy_mul".to_owned(),
            ops: 18,
            inputs: 4,
            const_ratio: 0.5,
            mul: 5,
            addsub: 3,
            logic: 1,
            cmp: 1,
            shift: 1,
            depth_bias: 0.6,
            fanout_skew: 0.3,
            loop_pairs: 2,
        }),
        _ => None,
    }
}

impl GenConfig {
    /// Validate the knob ranges.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Config`] naming the offending knob.
    pub fn validate(&self) -> Result<(), GenError> {
        let ident_ok = !self.name.is_empty()
            && self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_');
        if !ident_ok {
            return Err(GenError::Config(format!(
                "name `{}` must be a non-empty [A-Za-z0-9_] identifier",
                self.name
            )));
        }
        if self.ops == 0 {
            return Err(GenError::Config("ops must be >= 1".to_owned()));
        }
        if self.inputs == 0 {
            return Err(GenError::Config("inputs must be >= 1".to_owned()));
        }
        if self.mul + self.addsub + self.logic + self.cmp + self.shift == 0 {
            return Err(GenError::Config(
                "op-mix weights must not all be zero".to_owned(),
            ));
        }
        for (knob, v) in [
            ("depth_bias", self.depth_bias),
            ("fanout_skew", self.fanout_skew),
        ] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(GenError::Config(format!("{knob} must be in [0, 1], got {v}")));
            }
        }
        if !(0.0..=8.0).contains(&self.const_ratio) || self.const_ratio.is_nan() {
            return Err(GenError::Config(format!(
                "const_ratio must be in [0, 8], got {}",
                self.const_ratio
            )));
        }
        Ok(())
    }
}

/// Draw an operation kind from the weighted bucket mix.
fn pick_kind(rng: &mut StdRng, cfg: &GenConfig) -> OpKind {
    let total = cfg.mul + cfg.addsub + cfg.logic + cfg.cmp + cfg.shift;
    let mut r = rng.gen_range(0..total as usize) as u32;
    for (weight, bucket) in [
        (cfg.mul, &[OpKind::Mul][..]),
        (cfg.addsub, &[OpKind::Add, OpKind::Sub][..]),
        (cfg.logic, &[OpKind::And, OpKind::Or, OpKind::Xor, OpKind::Not][..]),
        (cfg.cmp, &[OpKind::Lt, OpKind::Gt, OpKind::Eq][..]),
        (cfg.shift, &[OpKind::Shl, OpKind::Shr, OpKind::Mov][..]),
    ] {
        if r < weight {
            return bucket[rng.gen_range(0..bucket.len())];
        }
        r -= weight;
    }
    // Unreachable: r < total and the weights sum to total.
    OpKind::Add
}

/// Pick an operand index into the eligible-value pool, applying the
/// depth bias (prefer recent definitions) and fan-out skew (prefer the
/// more popular of two uniform candidates).
fn pick_operand(rng: &mut StdRng, fanout: &[u32], cfg: &GenConfig) -> usize {
    let n = fanout.len();
    if n == 1 {
        return 0;
    }
    if rng.gen_bool(cfg.depth_bias) {
        let recent = n.min(3);
        return n - recent + rng.gen_range(0..recent);
    }
    if rng.gen_bool(cfg.fanout_skew) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        return if fanout[a] >= fanout[b] { a } else { b };
    }
    rng.gen_range(0..n)
}

/// Generate a random DFG from `(seed, cfg)`.
///
/// The construction is a single forward pass — every operand is drawn
/// from already-defined values — so the data portion of the graph is
/// acyclic by construction; cycles enter only through the explicit
/// loop-carried pairs, exactly as in the paper benchmarks. Condition
/// outputs (`<`, `>`, `==`) are excluded from the operand pool so the
/// graph never feeds a 1-bit flag into a data operation. Every
/// data-producing operation whose result is otherwise unused is marked
/// a primary output, which also guarantees at least one output (the
/// final operation is forced to be non-condition).
///
/// # Errors
///
/// * [`GenError::Config`] when `cfg` fails [`GenConfig::validate`];
/// * [`GenError::Dfg`] if the built graph fails validation (a
///   generator bug — covered by the validity tests).
pub fn generate(seed: u64, cfg: &GenConfig) -> Result<Dfg, GenError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DfgBuilder::new(format!("{}_s{seed}", cfg.name));

    // Pool of operand-eligible values, with parallel fan-out counts.
    let mut pool: Vec<ValueId> = Vec::new();
    let mut fanout: Vec<u32> = Vec::new();
    let mut input_ids: Vec<ValueId> = Vec::new();

    for i in 0..cfg.inputs {
        let v = b.input(&format!("a{i}"));
        input_ids.push(v);
        pool.push(v);
        fanout.push(0);
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let consts = (cfg.inputs as f64 * cfg.const_ratio).round() as usize;
    for i in 0..consts {
        // Small signed constants, like the paper benchmarks use.
        let value = rng.gen_range(0..31) as i64 - 15;
        pool.push(b.constant(&format!("c{i}"), value));
        fanout.push(0);
    }

    // Data-producing (non-condition) op outputs: loop-pair candidates
    // and default primary outputs when left unused.
    let mut data_outputs: Vec<ValueId> = Vec::new();
    let mut used = vec![false; pool.len()];
    for j in 0..cfg.ops {
        let mut kind = pick_kind(&mut rng, cfg);
        if j + 1 == cfg.ops && kind.is_condition() {
            // The last output can never be consumed, and a dangling
            // condition flag would leave the graph without a data
            // output; force an adder instead.
            kind = OpKind::Add;
        }
        let mut operands = Vec::with_capacity(kind.arity());
        for _ in 0..kind.arity() {
            let idx = pick_operand(&mut rng, &fanout, cfg);
            fanout[idx] += 1;
            used[idx] = true;
            operands.push(pool[idx]);
        }
        let out = b.op(&format!("N{j}"), kind, &operands, &format!("t{j}"))?;
        if !kind.is_condition() {
            // Condition flags stay out of the operand pool: data ops
            // must not consume 1-bit results.
            pool.push(out);
            fanout.push(0);
            used.push(false);
            data_outputs.push(out);
        }
    }

    // Every unconsumed data result becomes a primary output.
    for (idx, &v) in pool.iter().enumerate() {
        if !used[idx] && data_outputs.contains(&v) {
            b.mark_output(v);
        }
    }

    // Close loop-carried pairs: a random distinct data result feeds
    // back into each of the first `loop_pairs` inputs across
    // iterations (produced values must be primary outputs, mirroring
    // the diffeq benchmark's x/y/u recurrences).
    let pairs = cfg.loop_pairs.min(cfg.inputs).min(data_outputs.len());
    let mut candidates = data_outputs.clone();
    candidates.shuffle(&mut rng);
    for p in 0..pairs {
        let produced = candidates[p];
        b.mark_output(produced);
        b.loop_carried(produced, input_ids[p]);
    }

    b.finish().map_err(GenError::Dfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::AsapAlap;

    /// `(seed, config)` fully determines the graph.
    #[test]
    fn same_seed_and_config_reproduce_the_graph() {
        for name in PRESET_NAMES {
            let cfg = preset(name).expect("preset exists");
            let a = generate(7, &cfg).expect("generate");
            let b = generate(7, &cfg).expect("generate");
            assert_eq!(a, b, "preset {name} not deterministic");
        }
    }

    /// Different seeds almost surely differ (pinned seeds here).
    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let a = generate(1, &cfg).expect("generate");
        let b = generate(2, &cfg).expect("generate");
        assert_ne!(a, b);
    }

    /// Every preset × many seeds: validates, ASAP-schedules, and the
    /// graph name embeds the seed for repro.
    #[test]
    fn generated_graphs_validate_and_schedule() {
        for name in PRESET_NAMES {
            let cfg = preset(name).expect("preset exists");
            for seed in 0..24u64 {
                let dfg = generate(seed, &cfg)
                    .unwrap_or_else(|e| panic!("preset {name} seed {seed}: {e}"));
                dfg.validate()
                    .unwrap_or_else(|e| panic!("preset {name} seed {seed}: {e}"));
                assert!(dfg.num_ops() == cfg.ops);
                assert!(dfg.outputs().count() >= 1, "preset {name} seed {seed}");
                AsapAlap::compute(&dfg, None)
                    .unwrap_or_else(|e| panic!("preset {name} seed {seed}: {e}"));
                assert!(dfg.name().ends_with(&format!("_s{seed}")));
            }
        }
    }

    /// Generated graphs survive the emit → parse round-trip exactly.
    #[test]
    fn generated_graphs_roundtrip_through_text() {
        for name in PRESET_NAMES {
            let cfg = preset(name).expect("preset exists");
            for seed in [0u64, 3, 11] {
                let dfg = generate(seed, &cfg).expect("generate");
                let text = hlts_dfg::emit(&dfg).expect("emit");
                let back = hlts_dfg::parse(&text)
                    .unwrap_or_else(|e| panic!("preset {name} seed {seed}: {e}\n{text}"));
                assert_eq!(dfg, back, "preset {name} seed {seed} round-trip");
            }
        }
    }

    /// Loop pairs land where asked: `loopy-mul` closes two recurrences.
    #[test]
    fn loop_pairs_are_closed() {
        let cfg = preset("loopy-mul").expect("preset exists");
        for seed in 0..8u64 {
            let dfg = generate(seed, &cfg).expect("generate");
            assert_eq!(dfg.loop_carried().len(), 2, "seed {seed}");
            for &(produced, consumed) in dfg.loop_carried() {
                assert!(dfg.outputs().any(|o| o == produced));
                assert!(dfg.inputs().any(|i| i == consumed));
            }
        }
    }

    /// Op-mix weights steer the mix: a mul-only config generates only
    /// multipliers (except the forced final adder rule never fires
    /// since Mul is non-condition).
    #[test]
    fn op_mix_weights_are_respected() {
        let cfg = GenConfig {
            mul: 1,
            addsub: 0,
            logic: 0,
            cmp: 0,
            shift: 0,
            loop_pairs: 0,
            ..GenConfig::default()
        };
        let dfg = generate(5, &cfg).expect("generate");
        assert!(dfg.ops().iter().all(|o| o.kind() == OpKind::Mul));
    }

    /// Depth bias works: a fully deep config yields a longer critical
    /// path than a fully wide one (pinned seed).
    #[test]
    fn depth_bias_shapes_the_graph() {
        let deep = GenConfig {
            depth_bias: 1.0,
            fanout_skew: 0.0,
            loop_pairs: 0,
            ..GenConfig::default()
        };
        let wide = GenConfig {
            depth_bias: 0.0,
            fanout_skew: 0.0,
            loop_pairs: 0,
            ..GenConfig::default()
        };
        let d = generate(9, &deep).expect("generate");
        let w = generate(9, &wide).expect("generate");
        let dp = d.critical_path_len().expect("acyclic");
        let wp = w.critical_path_len().expect("acyclic");
        assert!(dp > wp, "deep path {dp} should exceed wide path {wp}");
    }

    /// Config validation pins its error messages.
    #[test]
    fn bad_configs_are_rejected() {
        let cases: [(GenConfig, &str); 4] = [
            (GenConfig { ops: 0, ..GenConfig::default() }, "ops must be >= 1"),
            (
                GenConfig { inputs: 0, ..GenConfig::default() },
                "inputs must be >= 1",
            ),
            (
                GenConfig {
                    mul: 0,
                    addsub: 0,
                    logic: 0,
                    cmp: 0,
                    shift: 0,
                    ..GenConfig::default()
                },
                "weights must not all be zero",
            ),
            (
                GenConfig { depth_bias: 1.5, ..GenConfig::default() },
                "depth_bias must be in [0, 1]",
            ),
        ];
        for (cfg, needle) in cases {
            let err = generate(0, &cfg).expect_err("must reject");
            assert!(err.to_string().contains(needle), "{err}");
        }
        let err = generate(0, &GenConfig { name: "no spaces".into(), ..GenConfig::default() })
            .expect_err("must reject");
        assert!(err.to_string().contains("identifier"), "{err}");
    }

    /// All preset names resolve; unknown names do not.
    #[test]
    fn preset_lookup() {
        for name in PRESET_NAMES {
            let cfg = preset(name).expect("preset exists");
            cfg.validate().expect("preset validates");
        }
        assert!(preset("nonsense").is_none());
    }
}
