//! Differential conformance harness: run one generated graph through
//! every redundant engine pair and demand bit-identical answers.
//!
//! The repo deliberately keeps several independent implementations of
//! the same contract — a worklist *and* a dense testability solver, a
//! transactional merge loop *and* a clone-based oracle, a parallel
//! *and* a sequential ΔC evaluator, a threaded *and* an in-thread DSE
//! runner, plus an invariant auditor that re-derives every structure
//! from scratch. Each pair is an executable cross-check: on any input
//! both sides must agree exactly, so a disagreement localizes a bug to
//! one engine without needing a known-good output. [`check_graph`]
//! runs the whole matrix on one `(seed, config)` graph; the checks and
//! what each one proves:
//!
//! | check               | pair                                      |
//! |---------------------|-------------------------------------------|
//! | `structure`         | generator output vs. `Dfg` invariants (validate, ASAP, ETPN lowering) |
//! | `testability-dense` | incremental worklist vs. dense Gauss–Seidel solver, pre- and post-synthesis |
//! | `parallel-delta`    | parallel vs. sequential k-candidate ΔC evaluation |
//! | `txn-oracle`        | journaled trial-merge/rollback loop vs. clone-per-trial oracle |
//! | `audit`             | final design vs. the from-scratch invariant auditor |
//! | `dse-front`         | multi-worker vs. serial Pareto sweep over a small grid |
//!
//! On divergence the harness returns a [`Divergence`] whose `Display`
//! prints the `(seed, config)` pair, a one-command repro line, and the
//! offending graph's full text — reproducing a failure never requires
//! the harness itself.

use std::fmt;

use hlts_core::{oracle, DesignState, EvalMode, IntegratedSynthesizer, SynthesisParams};
use hlts_dfg::AsapAlap;
use hlts_dse::{explore, ExploreConfig, SweepSpec};
use hlts_testability::TestabilityAnalysis;

use crate::{generate, GenConfig};

/// One engine-pair disagreement, carrying everything needed to
/// reproduce it outside the harness.
#[derive(Debug)]
pub struct Divergence {
    /// Seed of the offending graph.
    pub seed: u64,
    /// Config label — a preset name, or a description of custom knobs.
    pub config: String,
    /// Which check diverged (see the module table).
    pub check: &'static str,
    /// What disagreed, in one line.
    pub detail: String,
    /// Emitted text of the offending graph (empty only when emission
    /// itself failed).
    pub dfg_text: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conformance divergence [{}] at seed {} config {}: {}",
            self.check, self.seed, self.config, self.detail
        )?;
        writeln!(
            f,
            "reproduce: hlts gen --seed {} --preset {} | hlts run -",
            self.seed, self.config
        )?;
        write!(f, "offending graph:\n{}", self.dfg_text)
    }
}

impl std::error::Error for Divergence {}

/// Per-graph conformance accounting, aggregated by the sweep tests to
/// prove the run was not vacuous.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConformanceReport {
    /// Operations in the graph.
    pub ops: usize,
    /// Merges the synthesizer committed (txn side).
    pub merges: usize,
    /// DSE grid points computed per runner.
    pub dse_points: usize,
    /// Engine-pair checks that ran.
    pub checks: usize,
}

/// Run the full engine matrix on the graph generated from
/// `(seed, cfg)`; `config_label` names the config in failure output
/// (pass the preset name so the repro line works verbatim).
///
/// # Errors
///
/// Returns the first [`Divergence`] encountered, boxed (the payload
/// carries the full graph text).
pub fn check_graph(
    seed: u64,
    config_label: &str,
    cfg: &GenConfig,
) -> Result<ConformanceReport, Box<Divergence>> {
    let mut report = ConformanceReport::default();

    let diverge = |check: &'static str, detail: String, text: &str| {
        Box::new(Divergence {
            seed,
            config: config_label.to_owned(),
            check,
            detail,
            dfg_text: text.to_owned(),
        })
    };

    let dfg = match generate(seed, cfg) {
        Ok(d) => d,
        Err(e) => return Err(diverge("structure", format!("generate failed: {e}"), "")),
    };
    report.ops = dfg.num_ops();
    let text = match hlts_dfg::emit(&dfg) {
        Ok(t) => t,
        Err(e) => return Err(diverge("structure", format!("emit failed: {e}"), "")),
    };

    // --- structure: validate, round-trip, ASAP, ETPN lowering -------
    if let Err(e) = dfg.validate() {
        return Err(diverge("structure", format!("validate failed: {e}"), &text));
    }
    match hlts_dfg::parse(&text) {
        Ok(back) if back == dfg => {}
        Ok(_) => {
            return Err(diverge(
                "structure",
                "emit/parse round-trip changed the graph".to_owned(),
                &text,
            ))
        }
        Err(e) => return Err(diverge("structure", format!("re-parse failed: {e}"), &text)),
    }
    if let Err(e) = AsapAlap::compute(&dfg, None) {
        return Err(diverge("structure", format!("ASAP failed: {e}"), &text));
    }
    let initial = match DesignState::initial(&dfg) {
        Ok(s) => s,
        Err(e) => {
            return Err(diverge("structure", format!("initial design failed: {e}"), &text))
        }
    };
    let etpn = match initial.lower() {
        Ok(n) => n,
        Err(e) => return Err(diverge("structure", format!("lowering failed: {e}"), &text)),
    };
    report.checks += 1;

    // --- testability-dense: worklist vs. dense, on the initial design
    let worklist = TestabilityAnalysis::analyze(etpn.data_path());
    let dense = TestabilityAnalysis::analyze_dense(etpn.data_path());
    if worklist != dense {
        return Err(diverge(
            "testability-dense",
            "worklist and dense solvers disagree on the initial design".to_owned(),
            &text,
        ));
    }
    report.checks += 1;

    // --- parallel-delta: k-candidate ΔC evaluation, both modes ------
    let params = SynthesisParams::paper_defaults(8);
    let synth = IntegratedSynthesizer::new(params.clone());
    let sequential = match synth.run_mode(&dfg, EvalMode::Sequential) {
        Ok(r) => r,
        Err(e) => {
            return Err(diverge(
                "parallel-delta",
                format!("sequential synthesis failed: {e}"),
                &text,
            ))
        }
    };
    let parallel = match synth.run_mode(&dfg, EvalMode::Parallel) {
        Ok(r) => r,
        Err(e) => {
            return Err(diverge(
                "parallel-delta",
                format!("parallel synthesis failed: {e}"),
                &text,
            ))
        }
    };
    if sequential != parallel {
        return Err(diverge(
            "parallel-delta",
            format!(
                "parallel and sequential evaluation disagree: {} vs {} merges, \
                 metrics {:?} vs {:?}",
                parallel.merge_log.len(),
                sequential.merge_log.len(),
                parallel.metrics,
                sequential.metrics
            ),
            &text,
        ));
    }
    report.merges = sequential.merge_log.len();
    report.checks += 1;

    // --- txn-oracle: journaled rollback loop vs. clone-based oracle -
    let gold = match oracle::synthesize(&dfg, &params) {
        Ok(r) => r,
        Err(e) => {
            return Err(diverge("txn-oracle", format!("oracle failed: {e}"), &text))
        }
    };
    if sequential != gold {
        return Err(diverge(
            "txn-oracle",
            format!(
                "transactional loop and clone oracle disagree: {} vs {} merges, \
                 metrics {:?} vs {:?}",
                sequential.merge_log.len(),
                gold.merge_log.len(),
                sequential.metrics,
                gold.metrics
            ),
            &text,
        ));
    }
    report.checks += 1;

    // --- audit: re-derive every invariant on the final design -------
    let synthesized = DesignState::from_parts(
        &sequential.dfg,
        sequential.schedule.clone(),
        sequential.allocation.clone(),
    );
    let audit = synthesized.audit();
    if !audit.is_clean() {
        return Err(diverge("audit", format!("auditor flagged: {audit}"), &text));
    }
    // Also re-check the solver pair on the *merged* data path, whose
    // shared modules exercise propagation paths the initial one lacks.
    match synthesized.lower() {
        Ok(merged) => {
            let w = TestabilityAnalysis::analyze(merged.data_path());
            let d = TestabilityAnalysis::analyze_dense(merged.data_path());
            if w != d {
                return Err(diverge(
                    "testability-dense",
                    "worklist and dense solvers disagree on the synthesized design"
                        .to_owned(),
                    &text,
                ));
            }
        }
        Err(e) => {
            return Err(diverge(
                "audit",
                format!("synthesized design failed to lower: {e}"),
                &text,
            ))
        }
    }
    report.checks += 1;

    // --- dse-front: threaded vs. serial Pareto sweep ----------------
    let mut spec = SweepSpec::new(vec![(dfg.name().to_owned(), dfg.clone())]);
    spec.ks = vec![1, 3];
    spec.weights = vec![(2.0, 1.0), (1.0, 10.0)];
    let serial = match explore(&spec, &ExploreConfig { jobs: 1, ..ExploreConfig::default() }) {
        Ok(r) => r,
        Err(e) => {
            return Err(diverge("dse-front", format!("serial sweep failed: {e}"), &text))
        }
    };
    let threaded = match explore(&spec, &ExploreConfig { jobs: 3, ..ExploreConfig::default() }) {
        Ok(r) => r,
        Err(e) => {
            return Err(diverge(
                "dse-front",
                format!("threaded sweep failed: {e}"),
                &text,
            ))
        }
    };
    if !serial.failures.is_empty() || !threaded.failures.is_empty() {
        return Err(diverge(
            "dse-front",
            format!(
                "sweep points failed: serial {}, threaded {}",
                serial.failures.len(),
                threaded.failures.len()
            ),
            &text,
        ));
    }
    if serial.front_signature() != threaded.front_signature() || serial.results != threaded.results
    {
        return Err(diverge(
            "dse-front",
            format!(
                "serial and threaded sweeps disagree: fronts {} vs {}",
                serial.front_signature(),
                threaded.front_signature()
            ),
            &text,
        ));
    }
    report.dse_points = serial.results.len();
    report.checks += 1;

    Ok(report)
}

/// [`check_graph`] over a built-in preset name.
///
/// # Errors
///
/// [`Divergence`] as for [`check_graph`]; an unknown preset is
/// reported as a `structure` divergence.
pub fn check_preset(name: &str, seed: u64) -> Result<ConformanceReport, Box<Divergence>> {
    match crate::preset(name) {
        Some(cfg) => check_graph(seed, name, &cfg),
        None => Err(Box::new(Divergence {
            seed,
            config: name.to_owned(),
            check: "structure",
            detail: format!("unknown preset `{name}`"),
            dfg_text: String::new(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness itself: a known-good graph passes every check and
    /// the report proves all six ran.
    #[test]
    fn balanced_graph_conforms() {
        let report = check_preset("balanced", 0).expect("seed 0 conforms");
        assert_eq!(report.checks, 6);
        assert!(report.ops > 0);
        assert_eq!(report.dse_points, 4, "2 ks x 2 weight pairs");
    }

    /// Unknown presets produce a divergence that names them.
    #[test]
    fn unknown_preset_is_reported() {
        let err = check_preset("nope", 1).expect_err("unknown preset");
        assert_eq!(err.check, "structure");
        assert!(err.to_string().contains("unknown preset"));
    }

    /// The failure report is a self-contained repro: seed, config,
    /// repro command and graph text all present.
    #[test]
    fn divergence_display_is_a_repro_recipe() {
        let d = Divergence {
            seed: 42,
            config: "balanced".to_owned(),
            check: "txn-oracle",
            detail: "example".to_owned(),
            dfg_text: "dfg balanced_s42 {\n}\n".to_owned(),
        };
        let msg = d.to_string();
        assert!(msg.contains("[txn-oracle] at seed 42 config balanced"));
        assert!(msg.contains("hlts gen --seed 42 --preset balanced | hlts run -"));
        assert!(msg.contains("dfg balanced_s42 {"));
    }
}
