//! The shared, thread-safe testability-analysis engine.
//!
//! Algorithm 1 re-runs the CC/SC/CO/SO fixpoint constantly: once per
//! outer iteration to drive candidate selection, and once per candidate
//! inside the SR1/SR2 rescheduling merit checks. Two observations make
//! this cheap, mirroring the critical-path engine in `hlts-etpn`:
//!
//! 1. **Repetition.** The analysis result depends only on the data
//!    path's *structure* (nodes + wiring), which in turn depends only on
//!    the behavior and the allocation — the schedule merely changes arc
//!    guards, which the fixpoint never reads. So the SR2 reschedule
//!    variants of a candidate, the re-examinations of rejected
//!    candidates in later iterations, and the baseline of iteration
//!    *i + 1* (the committed trial of iteration *i*) all share results.
//!    Memoizing on [`DataPath::structural_hash`] turns them into
//!    lookups.
//! 2. **Locality.** A genuinely new structure differs from the current
//!    iteration's baseline in one merge's fan-in/fan-out cone. Keeping
//!    that baseline as an *anchor*, a miss is resolved by
//!    [`TestabilityAnalysis::reanalyze`] — a dirty-cone replay that is
//!    bit-identical to a full run — instead of from scratch.
//!
//! The engine is shared by all candidate evaluations of a synthesis
//! run, including parallel ones: the memo and anchor sit behind
//! [`Mutex`]es held only for lookup/insert/clone, and the counters are
//! atomics. Because every path (memoized, incremental, full) returns
//! bit-identical values, sharing across threads can never change a
//! result — only which counter ticks. Counter values themselves are
//! therefore *not* deterministic under parallelism (two threads can
//! race to the same miss) and are excluded from result equality
//! downstream.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hlts_etpn::DataPath;

use crate::analysis::TestabilityAnalysis;

/// Counters describing how an engine resolved its queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TestabilityCacheStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries that had to compute a fresh result.
    pub misses: u64,
    /// Misses resolved incrementally from the anchor solution.
    pub incremental: u64,
    /// Misses resolved by a full worklist analysis.
    pub full: u64,
    /// Accepted value updates propagated across all computed analyses —
    /// the work the worklist actually did (a dense solver would pay
    /// `sweeps × (nodes + arcs)` evaluations instead).
    pub updates_propagated: u64,
}

impl TestabilityCacheStats {
    /// Fraction of queries answered from the memo (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoizing, thread-safe testability evaluator for data paths.
///
/// Create one per synthesis run (`DesignState` in `hlts-core` carries
/// one and shares it across clones) and route every analysis through
/// it; see the module docs for why this is sound and fast.
#[derive(Debug, Default)]
pub struct TestabilityEngine {
    memo: Mutex<HashMap<u64, Arc<TestabilityAnalysis>>>,
    anchor: Mutex<Option<(u64, DataPath, Arc<TestabilityAnalysis>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    incremental: AtomicU64,
    full: AtomicU64,
    updates_propagated: AtomicU64,
}

impl TestabilityEngine {
    /// An empty engine.
    #[must_use]
    pub fn new() -> Self {
        TestabilityEngine::default()
    }

    /// The testability analysis of `dp`, memoized by structural hash.
    ///
    /// Equal to [`TestabilityAnalysis::analyze`] by construction: a hit
    /// returns a previously computed result for an identical structure,
    /// and a miss computes either incrementally from the anchor (itself
    /// bit-identical to a full run) or from scratch.
    ///
    /// # Panics
    ///
    /// Panics if an internal mutex was poisoned (a prior panic in
    /// another evaluation thread).
    #[must_use]
    pub fn analyze(&self, dp: &DataPath) -> Arc<TestabilityAnalysis> {
        let key = dp.structural_hash();
        if let Some(a) = self.memo.lock().expect("engine memo poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(a);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let anchored = {
            let anchor = self.anchor.lock().expect("engine anchor poisoned");
            anchor
                .as_ref()
                .filter(|(akey, _, _)| *akey != key)
                .map(|(_, adp, asol)| (adp.clone(), Arc::clone(asol)))
        };
        let result = match anchored {
            Some((adp, asol)) => {
                self.incremental.fetch_add(1, Ordering::Relaxed);
                asol.reanalyze(&adp, dp, &[])
            }
            None => {
                self.full.fetch_add(1, Ordering::Relaxed);
                TestabilityAnalysis::analyze(dp)
            }
        };
        self.updates_propagated
            .fetch_add(result.updates_propagated(), Ordering::Relaxed);
        let result = Arc::new(result);
        self.memo
            .lock()
            .expect("engine memo poisoned")
            .insert(key, Arc::clone(&result));
        result
    }

    /// Declare `solution` (for `dp`) the anchor that subsequent misses
    /// re-analyze incrementally from. Call once per outer iteration with
    /// the baseline analysis; candidates then differ from it by one
    /// merge cone. The anchor influences *how* misses are computed,
    /// never what they evaluate to, so a stale anchor is harmless.
    ///
    /// # Panics
    ///
    /// Panics if an internal mutex was poisoned.
    pub fn set_anchor(&self, dp: &DataPath, solution: &Arc<TestabilityAnalysis>) {
        let key = dp.structural_hash();
        self.memo
            .lock()
            .expect("engine memo poisoned")
            .insert(key, Arc::clone(solution));
        *self.anchor.lock().expect("engine anchor poisoned") =
            Some((key, dp.clone(), Arc::clone(solution)));
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> TestabilityCacheStats {
        TestabilityCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            incremental: self.incremental.load(Ordering::Relaxed),
            full: self.full.load(Ordering::Relaxed),
            updates_propagated: self.updates_propagated.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized analyses.
    ///
    /// # Panics
    ///
    /// Panics if the internal mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.memo.lock().expect("engine memo poisoned").len()
    }

    /// Whether the memo is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all memoized results and the anchor (counters are kept).
    ///
    /// # Panics
    ///
    /// Panics if an internal mutex was poisoned.
    pub fn clear(&self) {
        self.memo.lock().expect("engine memo poisoned").clear();
        *self.anchor.lock().expect("engine anchor poisoned") = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_alloc::Allocation;
    use hlts_dfg::{Dfg, DfgBuilder, OpKind};
    use hlts_etpn::Etpn;
    use hlts_sched::{list_schedule, ListPriority};

    fn chain(len: usize) -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let a = b.input("a");
        let c = b.input("c");
        let mut cur = a;
        for i in 0..len {
            cur = b
                .op(&format!("N{i}"), OpKind::Add, &[cur, c], &format!("t{i}"))
                .unwrap();
        }
        b.mark_output(cur);
        b.finish().unwrap()
    }

    fn lower(dfg: &Dfg, alloc: &Allocation) -> Etpn {
        let s = list_schedule(dfg, &[], ListPriority::CriticalPath).unwrap();
        Etpn::from_parts(dfg, &s, alloc).unwrap()
    }

    #[test]
    fn engine_matches_reference() {
        let engine = TestabilityEngine::new();
        for len in 1..5 {
            let d = chain(len);
            let alloc = Allocation::one_to_one(&d);
            let e = lower(&d, &alloc);
            let got = engine.analyze(e.data_path());
            let want = TestabilityAnalysis::analyze(e.data_path());
            assert!(*got == want, "len={len}");
        }
        assert_eq!(engine.stats().misses, 4);
        assert_eq!(engine.stats().full, 4, "no anchor: all misses are full");
    }

    #[test]
    fn repeated_queries_hit_the_memo() {
        let engine = TestabilityEngine::new();
        let d = chain(3);
        let alloc = Allocation::one_to_one(&d);
        let e = lower(&d, &alloc);
        let first = engine.analyze(e.data_path());
        for _ in 0..5 {
            let again = engine.analyze(e.data_path());
            assert!(Arc::ptr_eq(&first, &again), "hits share the allocation");
        }
        let s = engine.stats();
        assert_eq!((s.hits, s.misses), (5, 1));
        assert!(s.hit_rate() > 0.8);
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn anchored_misses_resolve_incrementally_and_identically() {
        let d = chain(3);
        let base_alloc = Allocation::one_to_one(&d);
        let base = lower(&d, &base_alloc);

        let mut alloc = base_alloc.clone();
        let r0 = alloc.register_of(d.value_by_name("t0").unwrap()).unwrap();
        let r2 = alloc.register_of(d.value_by_name("t2").unwrap()).unwrap();
        alloc.merge_registers(r0, r2).unwrap();
        let merged = lower(&d, &alloc);

        let engine = TestabilityEngine::new();
        let baseline = engine.analyze(base.data_path());
        engine.set_anchor(base.data_path(), &baseline);
        let got = engine.analyze(merged.data_path());
        let want = TestabilityAnalysis::analyze(merged.data_path());
        assert!(*got == want, "incremental hit must be bit-identical");
        let s = engine.stats();
        assert_eq!(s.incremental, 1);
        assert_eq!(s.full, 1);
    }

    #[test]
    fn set_anchor_also_memoizes_the_baseline() {
        let d = chain(2);
        let alloc = Allocation::one_to_one(&d);
        let e = lower(&d, &alloc);
        let engine = TestabilityEngine::new();
        let sol = Arc::new(TestabilityAnalysis::analyze(e.data_path()));
        engine.set_anchor(e.data_path(), &sol);
        let got = engine.analyze(e.data_path());
        assert!(Arc::ptr_eq(&sol, &got));
        assert_eq!(engine.stats().hits, 1);
        assert_eq!(engine.stats().misses, 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let d = chain(2);
        let alloc = Allocation::one_to_one(&d);
        let e = lower(&d, &alloc);
        let engine = TestabilityEngine::new();
        let _ = engine.analyze(e.data_path());
        engine.clear();
        assert!(engine.is_empty());
        assert_eq!(engine.stats().misses, 1);
        let _ = engine.analyze(e.data_path());
        assert_eq!(engine.stats().misses, 2, "cleared entry recomputes");
    }
}
