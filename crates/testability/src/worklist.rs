//! A sweep-indexed worklist that reproduces dense Gauss–Seidel order.
//!
//! The dense reference solver evaluates elements in ascending index
//! order, sweep after sweep, with in-place updates. To be bit-identical
//! to it, a worklist cannot be a plain FIFO: it must pop the pending
//! element with the smallest `(sweep, index)` pair, so that an accepted
//! change at index *i* during sweep *s* re-evaluates a dependent *j*
//! within the same sweep when `j > i` (dense has not reached it yet this
//! pass) and in sweep `s + 1` otherwise. [`Worklist::push_after`]
//! encodes exactly that rule.

use std::collections::{BTreeMap, BTreeSet};

/// Pending evaluations, grouped by sweep and ordered by element index
/// within a sweep. Sweeps beyond `max_sweep` are silently dropped,
/// mirroring the dense solver's iteration cap.
#[derive(Debug)]
pub(crate) struct Worklist {
    sweeps: BTreeMap<u32, BTreeSet<usize>>,
    max_sweep: u32,
}

impl Worklist {
    pub(crate) fn new(max_sweep: u32) -> Self {
        Worklist {
            sweeps: BTreeMap::new(),
            max_sweep,
        }
    }

    /// Schedule element `idx` for evaluation in `sweep` (1-based).
    pub(crate) fn push(&mut self, sweep: u32, idx: usize) {
        if (1..=self.max_sweep).contains(&sweep) {
            self.sweeps.entry(sweep).or_default().insert(idx);
        }
    }

    /// Schedule dependent `idx` after an accepted change at `cur_idx`
    /// during `sweep`: same sweep if dense would still reach it this
    /// pass (`idx > cur_idx`), next sweep otherwise.
    pub(crate) fn push_after(&mut self, sweep: u32, cur_idx: usize, idx: usize) {
        if idx > cur_idx {
            self.push(sweep, idx);
        } else {
            self.push(sweep + 1, idx);
        }
    }

    /// Pop the pending element with the smallest `(sweep, index)`.
    pub(crate) fn pop(&mut self) -> Option<(u32, usize)> {
        let (&sweep, set) = self.sweeps.iter_mut().next()?;
        let idx = set.pop_first().expect("sweep sets are never left empty");
        if set.is_empty() {
            self.sweeps.remove(&sweep);
        }
        Some((sweep, idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_sweep_then_index_order() {
        let mut wl = Worklist::new(4);
        wl.push(2, 1);
        wl.push(1, 7);
        wl.push(1, 3);
        wl.push(2, 0);
        assert_eq!(wl.pop(), Some((1, 3)));
        assert_eq!(wl.pop(), Some((1, 7)));
        assert_eq!(wl.pop(), Some((2, 0)));
        assert_eq!(wl.pop(), Some((2, 1)));
        assert_eq!(wl.pop(), None);
    }

    #[test]
    fn push_after_follows_gauss_seidel_visibility() {
        let mut wl = Worklist::new(4);
        wl.push_after(1, 5, 9); // downstream: same sweep
        wl.push_after(1, 5, 2); // upstream: next sweep
        wl.push_after(1, 5, 5); // self-loop: next sweep
        assert_eq!(wl.pop(), Some((1, 9)));
        assert_eq!(wl.pop(), Some((2, 2)));
        assert_eq!(wl.pop(), Some((2, 5)));
    }

    #[test]
    fn drops_sweeps_beyond_the_cap() {
        let mut wl = Worklist::new(2);
        wl.push(3, 0);
        wl.push_after(2, 5, 1); // would be sweep 3
        wl.push(0, 4); // sweep 0 is seeds, never scheduled
        assert_eq!(wl.pop(), None);
    }

    #[test]
    fn dedupes_within_a_sweep() {
        let mut wl = Worklist::new(4);
        wl.push(1, 2);
        wl.push(1, 2);
        assert_eq!(wl.pop(), Some((1, 2)));
        assert_eq!(wl.pop(), None);
    }
}
