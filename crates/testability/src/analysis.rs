//! The CC/SC/CO/SO fixpoint analysis over an ETPN data path.
//!
//! Two solvers produce the same fixpoint:
//!
//! * [`TestabilityAnalysis::analyze`] — the production path: an indexed
//!   **worklist** that seeds every evaluable element once and afterwards
//!   only re-evaluates elements whose inputs actually changed, so cost
//!   scales with the number of propagated updates instead of
//!   `MAX_SWEEPS × |nodes|`. It also records a per-element *history* of
//!   accepted updates (which sweep produced which value), the raw
//!   material of the incremental re-analysis in
//!   [`TestabilityAnalysis::reanalyze`](crate::TestabilityAnalysis::reanalyze).
//! * [`TestabilityAnalysis::analyze_dense`] — the original dense
//!   Gauss–Seidel reference: up to [`MAX_SWEEPS`] full passes over every
//!   node, then every arc. Kept as the oracle the worklist is
//!   property-tested against.
//!
//! The worklist is **bit-identical** to the dense reference, not merely
//! convergent to the same fixpoint: a dense sweep evaluates nodes in
//! ascending id order with in-place updates, so a sweep is exactly "the
//! ascending set of nodes whose inputs changed visibly", and
//! re-evaluating a node whose inputs did not change is a no-op (the
//! acceptance rule [`Controllability::better_than`] is deterministic in
//! the inputs). The worklist schedules exactly those evaluations: an
//! accepted change at node *i* during sweep *s* re-enqueues each
//! successor *j* into sweep *s* when `j > i` (dense has not reached it
//! yet) and into sweep `s + 1` otherwise.

use hlts_dfg::OpKind;
use hlts_etpn::{DataPath, DpArc, DpArcId, DpNodeId, DpNodeKind};

use crate::factors::{ctf, otf};
use crate::worklist::Worklist;

/// Sequential-cost sentinel for "not yet reachable".
pub(crate) const UNREACHED: f64 = 1.0e9;
/// Weight of the sequential factor when scalarizing a measure for
/// comparisons (one extra time frame ≈ 5% combinational quality).
const SEQ_WEIGHT: f64 = 0.05;
/// Fixpoint iteration cap (loops converge geometrically; this bounds
/// pathological inputs).
pub(crate) const MAX_SWEEPS: usize = 64;
const EPS: f64 = 1.0e-9;

/// Controllability of a line or node: combinational factor `cc ∈ [0, 1]`
/// (1 = freely controllable) and sequential factor `sc ≥ 0` (time frames
/// needed to load a value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Controllability {
    /// Combinational controllability.
    pub cc: f64,
    /// Sequential controllability (time frames).
    pub sc: f64,
}

impl Controllability {
    /// The uncontrollable bottom element.
    #[must_use]
    pub fn none() -> Self {
        Controllability {
            cc: 0.0,
            sc: UNREACHED,
        }
    }

    /// Scalar quality for ranking: `cc − w·sc` (higher is better).
    #[must_use]
    pub fn scalar(self) -> f64 {
        if self.sc >= UNREACHED {
            return 0.0;
        }
        (self.cc - SEQ_WEIGHT * self.sc).max(0.0)
    }

    /// Unclamped ordering key for the fixpoint: unlike
    /// [`Controllability::scalar`], deeply attenuated values stay
    /// comparable instead of saturating at zero.
    fn rank(self) -> f64 {
        if self.sc >= UNREACHED {
            return f64::NEG_INFINITY;
        }
        self.cc - SEQ_WEIGHT * self.sc
    }

    pub(crate) fn better_than(self, other: Controllability) -> bool {
        self.rank() > other.rank() + EPS
    }
}

/// Observability of a line or node: combinational factor `co ∈ [0, 1]`
/// (1 = directly observable) and sequential factor `so ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observability {
    /// Combinational observability.
    pub co: f64,
    /// Sequential observability (time frames).
    pub so: f64,
}

impl Observability {
    /// The unobservable bottom element.
    #[must_use]
    pub fn none() -> Self {
        Observability {
            co: 0.0,
            so: UNREACHED,
        }
    }

    /// Scalar quality for ranking: `co − w·so` (higher is better).
    #[must_use]
    pub fn scalar(self) -> f64 {
        if self.so >= UNREACHED {
            return 0.0;
        }
        (self.co - SEQ_WEIGHT * self.so).max(0.0)
    }

    /// Unclamped ordering key for the fixpoint (see
    /// [`Controllability`]'s equivalent).
    fn rank(self) -> f64 {
        if self.so >= UNREACHED {
            return f64::NEG_INFINITY;
        }
        self.co - SEQ_WEIGHT * self.so
    }

    pub(crate) fn better_than(self, other: Observability) -> bool {
        self.rank() > other.rank() + EPS
    }
}

/// An accepted-update history: the sweep-stamped sequence of values an
/// element took during the fixpoint, starting with its seed at sweep 0.
/// Sweeps are 1-indexed and an element changes at most once per sweep,
/// so the stamps are strictly increasing.
pub(crate) type History<T> = Vec<(u32, T)>;

/// Arena-packed per-element histories: one flat event buffer plus a
/// `(start, len)` range per element. Building a result this way costs
/// O(1) allocations instead of one `Vec` per element — which matters
/// because the incremental path copies every boundary element's history
/// into its result.
#[derive(Debug, Clone, Default)]
pub(crate) struct Histories<T> {
    data: Vec<(u32, T)>,
    range: Vec<(u32, u32)>,
}

impl<T: Copy> Histories<T> {
    /// The no-histories marker (dense results).
    pub(crate) fn none() -> Self {
        Histories {
            data: Vec::new(),
            range: Vec::new(),
        }
    }

    /// Number of elements with a recorded history.
    pub(crate) fn len(&self) -> usize {
        self.range.len()
    }

    /// Total recorded events, across all elements.
    pub(crate) fn events(&self) -> usize {
        self.data.len()
    }

    /// The history of element `i`, seed first.
    pub(crate) fn slice(&self, i: usize) -> &[(u32, T)] {
        let (s, l) = self.range[i];
        &self.data[s as usize..(s + l) as usize]
    }

    /// An empty arena with capacity hints.
    pub(crate) fn with_capacity(elems: usize, events: usize) -> Self {
        Histories {
            data: Vec::with_capacity(events),
            range: Vec::with_capacity(elems),
        }
    }

    /// Append the next element's full history.
    pub(crate) fn push_slice(&mut self, h: &[(u32, T)]) {
        self.range.push((self.data.len() as u32, h.len() as u32));
        self.data.extend_from_slice(h);
    }

    /// Pack per-element event lists (each starting with its sweep-0
    /// seed) into an arena.
    pub(crate) fn pack(events: Vec<History<T>>) -> Self {
        let total = events.iter().map(Vec::len).sum();
        let mut packed = Histories::with_capacity(events.len(), total);
        for h in &events {
            packed.push_slice(h);
        }
        packed
    }
}

/// The full analysis result: per-node output-line controllability and
/// per-arc observability, plus the node summaries of the paper's §3.
///
/// Equality compares the **values** only (`out_ctrl`, `arc_obs`,
/// exactly, bit for bit) — diagnostics such as sweep counts and update
/// histories are excluded, so a worklist, dense or incremental result
/// for the same data path compares equal.
#[derive(Debug, Clone)]
pub struct TestabilityAnalysis {
    /// Controllability of each node's output line.
    pub(crate) out_ctrl: Vec<Controllability>,
    /// Observability of each arc (a line into its sink).
    pub(crate) arc_obs: Vec<Observability>,
    pub(crate) sweeps_used: usize,
    /// Accepted worklist updates beyond the seeds (diagnostics).
    pub(crate) updates: u64,
    /// Per-node accepted-update histories (empty for dense results).
    pub(crate) ctrl_hist: Histories<Controllability>,
    /// Per-arc accepted-update histories (empty for dense results).
    pub(crate) obs_hist: Histories<Observability>,
}

impl PartialEq for TestabilityAnalysis {
    fn eq(&self, other: &Self) -> bool {
        self.out_ctrl == other.out_ctrl && self.arc_obs == other.arc_obs
    }
}

/// The seed value of a node before any propagation.
///
/// Initialization follows the paper: "assigns first ones to CCs and
/// zeros to SCs for all primary inputs in the data path". A constant
/// drives one fixed value: usable, but useless for justifying arbitrary
/// patterns.
pub(crate) fn ctrl_seed(kind: &DpNodeKind) -> Controllability {
    match kind {
        DpNodeKind::PrimaryInput(_) => Controllability { cc: 1.0, sc: 0.0 },
        DpNodeKind::Const(_) => Controllability { cc: 0.5, sc: 0.0 },
        _ => Controllability::none(),
    }
}

/// Whether the forward pass re-evaluates this node kind (sources keep
/// their seeds; ports and conditions produce nothing further).
pub(crate) fn forward_evaluable(kind: &DpNodeKind) -> bool {
    matches!(kind, DpNodeKind::Register(_) | DpNodeKind::Module { .. })
}

/// The forward transfer function: the candidate output controllability
/// of `node` given its predecessors' current values. `None` for kinds
/// the forward pass does not evaluate.
pub(crate) fn ctrl_candidate<F>(dp: &DataPath, node: DpNodeId, ctrl_of: &F) -> Option<Controllability>
where
    F: Fn(DpNodeId) -> Controllability,
{
    match dp.node(node).kind() {
        DpNodeKind::Register(_) => {
            // best over input lines, plus one time frame
            let best = best_input(dp, node, ctrl_of);
            Some(Controllability {
                cc: best.cc,
                sc: if best.sc >= UNREACHED {
                    UNREACHED
                } else {
                    best.sc + 1.0
                },
            })
        }
        DpNodeKind::Module { kinds, .. } => Some(module_output_ctrl(
            dp,
            node,
            kinds.iter().copied(),
            ctrl_of,
        )),
        _ => None,
    }
}

/// The backward transfer function: the candidate observability of `arc`
/// given the sink's out-arcs' current observabilities and the final
/// controllability solution.
pub(crate) fn obs_candidate<F, G>(
    dp: &DataPath,
    arc: &DpArc,
    ctrl_of: &F,
    obs_of: &G,
) -> Observability
where
    F: Fn(DpNodeId) -> Controllability,
    G: Fn(DpArcId) -> Observability,
{
    let sink = dp.node(arc.to());
    match sink.kind() {
        DpNodeKind::PrimaryOutput(_) => Observability { co: 1.0, so: 0.0 },
        // a condition is observed through the controller's branching
        // behavior: indirect but cheap
        DpNodeKind::ConditionOut(_) => Observability { co: 0.9, so: 0.0 },
        DpNodeKind::Register(_) => {
            let out = node_out_obs(dp, sink.id(), obs_of);
            Observability {
                co: out.co,
                so: if out.so >= UNREACHED {
                    UNREACHED
                } else {
                    out.so + 1.0
                },
            }
        }
        DpNodeKind::Module { kinds, .. } => {
            let out = node_out_obs(dp, sink.id(), obs_of);
            if out.so >= UNREACHED {
                Observability::none()
            } else {
                // propagating through the module requires controlling
                // its other input ports
                let side = side_ports_ctrl(dp, sink.id(), arc.port(), ctrl_of);
                let f = kinds.iter().copied().map(otf).fold(1.0, f64::min);
                Observability {
                    co: f * out.co * side.cc,
                    so: out.so
                        + if side.sc >= UNREACHED {
                            // no side value needed (unary)
                            0.0
                        } else {
                            side.sc
                        },
                }
            }
        }
        _ => Observability::none(),
    }
}

impl TestabilityAnalysis {
    /// Run the analysis to fixpoint with the indexed worklist solver.
    ///
    /// Initialization follows the paper: "assigns first ones to CCs and
    /// zeros to SCs for all primary inputs in the data path ... these
    /// values will then be propagated ... until the primary outputs are
    /// reached. A similar approach can be used for calculating
    /// observability in the reverse direction." Feedback loops are
    /// handled by propagating to a fixpoint from a pessimistic start.
    ///
    /// Bit-identical to [`TestabilityAnalysis::analyze_dense`] (see the
    /// module docs for the argument, and the crate's property tests for
    /// the evidence), but only elements whose inputs changed are
    /// re-evaluated, and accepted-update histories are recorded for
    /// [`TestabilityAnalysis::reanalyze`](Self::reanalyze).
    #[must_use]
    pub fn analyze(dp: &DataPath) -> Self {
        let n = dp.num_nodes();
        let mut out_ctrl = vec![Controllability::none(); n];
        let mut ctrl_hist: Vec<History<Controllability>> = vec![Vec::new(); n];
        for node in dp.nodes() {
            let seed = ctrl_seed(node.kind());
            out_ctrl[node.id().index()] = seed;
            ctrl_hist[node.id().index()].push((0, seed));
        }

        let mut updates = 0u64;

        // Forward worklist for controllability: sweep 1 evaluates every
        // register/module (exactly like the dense first sweep); later
        // sweeps only the elements an accepted change reached.
        let mut wl = Worklist::new(MAX_SWEEPS as u32);
        for node in dp.nodes() {
            if forward_evaluable(node.kind()) {
                wl.push(1, node.id().index());
            }
        }
        let mut last_change = 0u32;
        while let Some((sweep, i)) = wl.pop() {
            let id = DpNodeId::from_index(i);
            let Some(new) = ctrl_candidate(dp, id, &|p: DpNodeId| out_ctrl[p.index()]) else {
                continue;
            };
            if new.better_than(out_ctrl[i]) {
                out_ctrl[i] = new;
                ctrl_hist[i].push((sweep, new));
                last_change = sweep;
                updates += 1;
                for &out in dp.out_arc_ids(id) {
                    let s = dp.arc(out).to();
                    if forward_evaluable(dp.node(s).kind()) {
                        wl.push_after(sweep, i, s.index());
                    }
                }
            }
        }
        // Dense runs one final no-change sweep before stopping (unless
        // the cap cuts it short).
        let sweeps_used = (last_change as usize + 1).min(MAX_SWEEPS);

        // Backward worklist for observability, per arc. An accepted
        // change of arc b = (v → w) invalidates every arc *into* v.
        let m = dp.num_arcs();
        let mut arc_obs = vec![Observability::none(); m];
        let mut obs_hist: Vec<History<Observability>> = vec![vec![(0, Observability::none())]; m];
        let ctrl_final = |p: DpNodeId| out_ctrl[p.index()];
        let mut wl = Worklist::new(MAX_SWEEPS as u32);
        for i in 0..m {
            wl.push(1, i);
        }
        while let Some((sweep, i)) = wl.pop() {
            let arc = dp.arc(DpArcId::from_index(i));
            let new = obs_candidate(dp, arc, &ctrl_final, &|a: DpArcId| arc_obs[a.index()]);
            if new.better_than(arc_obs[i]) {
                arc_obs[i] = new;
                obs_hist[i].push((sweep, new));
                updates += 1;
                for &dep in dp.in_arc_ids(arc.from()) {
                    wl.push_after(sweep, i, dep.index());
                }
            }
        }

        TestabilityAnalysis {
            out_ctrl,
            arc_obs,
            sweeps_used,
            updates,
            ctrl_hist: Histories::pack(ctrl_hist),
            obs_hist: Histories::pack(obs_hist),
        }
    }

    /// Run the analysis to fixpoint with dense Gauss–Seidel sweeps — the
    /// original reference solver the worklist and incremental paths are
    /// verified against. Records no update histories, so a result from
    /// here cannot seed [`TestabilityAnalysis::reanalyze`](Self::reanalyze)
    /// incrementally (it falls back to a full analysis).
    #[must_use]
    pub fn analyze_dense(dp: &DataPath) -> Self {
        let n = dp.num_nodes();
        let mut out_ctrl = vec![Controllability::none(); n];

        // Seed sources.
        for node in dp.nodes() {
            out_ctrl[node.id().index()] = ctrl_seed(node.kind());
        }

        // Forward fixpoint for controllability.
        let mut updates = 0u64;
        let mut sweeps_used = 0;
        for sweep in 0..MAX_SWEEPS {
            sweeps_used = sweep + 1;
            let mut changed = false;
            for node in dp.nodes() {
                let i = node.id().index();
                let Some(new) = ctrl_candidate(dp, node.id(), &|p: DpNodeId| out_ctrl[p.index()])
                else {
                    continue;
                };
                if new.better_than(out_ctrl[i]) {
                    out_ctrl[i] = new;
                    changed = true;
                    updates += 1;
                }
            }
            if !changed {
                break;
            }
        }

        // Backward fixpoint for observability, per arc.
        let mut arc_obs = vec![Observability::none(); dp.num_arcs()];
        for _sweep in 0..MAX_SWEEPS {
            let mut changed = false;
            for arc in dp.arcs() {
                let new = obs_candidate(
                    dp,
                    arc,
                    &|p: DpNodeId| out_ctrl[p.index()],
                    &|a: DpArcId| arc_obs[a.index()],
                );
                let slot = &mut arc_obs[arc.id().index()];
                if new.better_than(*slot) {
                    *slot = new;
                    changed = true;
                    updates += 1;
                }
            }
            if !changed {
                break;
            }
        }

        TestabilityAnalysis {
            out_ctrl,
            arc_obs,
            sweeps_used,
            updates,
            ctrl_hist: Histories::none(),
            obs_hist: Histories::none(),
        }
    }

    /// Whether this result carries the update histories the incremental
    /// re-analysis needs (worklist and incremental results do; dense
    /// results do not).
    #[must_use]
    pub fn has_history(&self) -> bool {
        self.ctrl_hist.len() == self.out_ctrl.len() && self.obs_hist.len() == self.arc_obs.len()
    }

    /// Controllability of a node's output line.
    #[must_use]
    pub fn output_controllability(&self, node: DpNodeId) -> Controllability {
        self.out_ctrl[node.index()]
    }

    /// Observability of a specific arc (line).
    #[must_use]
    pub fn arc_observability(&self, arc: DpArcId) -> Observability {
        self.arc_obs[arc.index()]
    }

    /// The paper's node controllability: the best controllability of any
    /// of the node's *input* lines (an input line carries the source
    /// node's output controllability). Source nodes (PIs, constants) use
    /// their own output controllability.
    #[must_use]
    pub fn node_controllability(&self, dp: &DataPath, node: DpNodeId) -> Controllability {
        let ins = dp.in_arc_ids(node);
        if ins.is_empty() {
            return self.out_ctrl[node.index()];
        }
        ins.iter().map(|&a| self.out_ctrl[dp.arc(a).from().index()]).fold(
            Controllability::none(),
            |acc, c| {
                if c.better_than(acc) {
                    c
                } else {
                    acc
                }
            },
        )
    }

    /// The paper's node observability: the best observability of any of
    /// the node's *output* lines.
    #[must_use]
    pub fn node_observability(&self, dp: &DataPath, node: DpNodeId) -> Observability {
        dp.out_arc_ids(node)
            .iter()
            .map(|&a| self.arc_obs[a.index()])
            .fold(Observability::none(), |acc, o| {
                if o.better_than(acc) {
                    o
                } else {
                    acc
                }
            })
    }

    /// Number of forward sweeps the fixpoint needed (diagnostics).
    #[must_use]
    pub fn sweeps_used(&self) -> usize {
        self.sweeps_used
    }

    /// Number of accepted value updates propagated beyond the seeds —
    /// the quantity the worklist's cost actually scales with.
    #[must_use]
    pub fn updates_propagated(&self) -> u64 {
        self.updates
    }
}

/// Best controllability over all input lines of `node`.
fn best_input<F>(dp: &DataPath, node: DpNodeId, ctrl_of: &F) -> Controllability
where
    F: Fn(DpNodeId) -> Controllability,
{
    dp.in_arc_ids(node)
        .iter()
        .map(|&a| ctrl_of(dp.arc(a).from()))
        .fold(Controllability::none(), |acc, c| {
            if c.better_than(acc) {
                c
            } else {
                acc
            }
        })
}

/// Output controllability of a module: CTF × the *worst* port (to control
/// the output you must control every input port; each port contributes
/// its best source).
fn module_output_ctrl<F>(
    dp: &DataPath,
    node: DpNodeId,
    kinds: impl Iterator<Item = OpKind>,
    ctrl_of: &F,
) -> Controllability
where
    F: Fn(DpNodeId) -> Controllability,
{
    let f = kinds.map(ctf).fold(1.0, f64::min);
    let ins = dp.in_arc_ids(node);
    let max_port = ins.iter().map(|&a| dp.arc(a).port()).max().unwrap_or(0);
    let mut cc: f64 = 1.0;
    let mut sc: f64 = 0.0;
    for port in 0..=max_port {
        let best = ins
            .iter()
            .filter(|&&a| dp.arc(a).port() == port)
            .map(|&a| ctrl_of(dp.arc(a).from()))
            .fold(Controllability::none(), |acc, c| {
                if c.better_than(acc) {
                    c
                } else {
                    acc
                }
            });
        cc = cc.min(best.cc);
        sc = sc.max(best.sc);
    }
    if sc >= UNREACHED || ins.is_empty() {
        return Controllability::none();
    }
    Controllability { cc: f * cc, sc }
}

/// Combined controllability of all ports of `node` other than `port` —
/// the side values that must be justified to propagate through the
/// module. Returns the *worst* side port (all must be set).
fn side_ports_ctrl<F>(dp: &DataPath, node: DpNodeId, port: usize, ctrl_of: &F) -> Controllability
where
    F: Fn(DpNodeId) -> Controllability,
{
    let ins = dp.in_arc_ids(node);
    let max_port = ins.iter().map(|&a| dp.arc(a).port()).max().unwrap_or(0);
    let mut cc: f64 = 1.0;
    let mut sc: f64 = 0.0;
    let mut any = false;
    for p in 0..=max_port {
        if p == port {
            continue;
        }
        let best = ins
            .iter()
            .filter(|&&a| dp.arc(a).port() == p)
            .map(|&a| ctrl_of(dp.arc(a).from()))
            .fold(Controllability::none(), |acc, c| {
                if c.better_than(acc) {
                    c
                } else {
                    acc
                }
            });
        if best.sc >= UNREACHED {
            return Controllability::none();
        }
        any = true;
        cc = cc.min(best.cc);
        sc = sc.max(best.sc);
    }
    if any {
        Controllability { cc, sc }
    } else {
        // unary module: nothing to justify
        Controllability {
            cc: 1.0,
            sc: UNREACHED,
        }
    }
}

/// Node output observability: best over the node's out-arcs (the fold
/// keeps the earliest arc on rank ties, exactly like the dense code).
fn node_out_obs<G>(dp: &DataPath, node: DpNodeId, obs_of: &G) -> Observability
where
    G: Fn(DpArcId) -> Observability,
{
    dp.out_arc_ids(node)
        .iter()
        .map(|&a| obs_of(a))
        .fold(Observability::none(), |acc, o| {
            if o.better_than(acc) {
                o
            } else {
                acc
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_alloc::Allocation;
    use hlts_dfg::{Dfg, DfgBuilder, OpKind};
    use hlts_etpn::Etpn;
    use hlts_sched::{list_schedule, ListPriority, Schedule};

    fn lower(dfg: &Dfg) -> (Etpn, Schedule, Allocation) {
        let s = list_schedule(dfg, &[], ListPriority::CriticalPath).unwrap();
        let a = Allocation::one_to_one(dfg);
        let e = Etpn::from_parts(dfg, &s, &a).unwrap();
        (e, s, a)
    }

    fn chain(len: usize) -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let a = b.input("a");
        let c = b.input("c");
        let mut cur = a;
        for i in 0..len {
            cur = b
                .op(&format!("N{i}"), OpKind::Add, &[cur, c], &format!("t{i}"))
                .unwrap();
        }
        b.mark_output(cur);
        b.finish().unwrap()
    }

    #[test]
    fn primary_input_is_fully_controllable() {
        let d = chain(2);
        let (e, _, _) = lower(&d);
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        for node in dp.nodes() {
            if node.kind().is_primary_input() {
                let c = ta.output_controllability(node.id());
                assert_eq!(c.cc, 1.0);
                assert_eq!(c.sc, 0.0);
            }
        }
    }

    #[test]
    fn sc_counts_register_stages() {
        let d = chain(3);
        let (e, _, alloc) = lower(&d);
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        // register of t0: PI -> R(a) -> FU -> R(t0): 2 time frames
        let t0 = d.value_by_name("t0").unwrap();
        let r0 = dp.node_of_register(alloc.register_of(t0).unwrap()).unwrap();
        let c0 = ta.output_controllability(r0);
        let t2 = d.value_by_name("t2").unwrap();
        let r2 = dp.node_of_register(alloc.register_of(t2).unwrap()).unwrap();
        let c2 = ta.output_controllability(r2);
        assert!(c2.sc > c0.sc, "deeper register has larger SC");
        assert!(c2.cc < c0.cc, "deeper register has smaller CC");
    }

    #[test]
    fn so_counts_stages_to_output() {
        let d = chain(3);
        let (e, _, alloc) = lower(&d);
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        let near = d.value_by_name("t2").unwrap(); // output, directly observed
        let far = d.value_by_name("t0").unwrap();
        let rn = dp
            .node_of_register(alloc.register_of(near).unwrap())
            .unwrap();
        let rf = dp
            .node_of_register(alloc.register_of(far).unwrap())
            .unwrap();
        let on = ta.node_observability(dp, rn);
        let of_ = ta.node_observability(dp, rf);
        assert!(on.scalar() > of_.scalar());
        assert!(of_.so > on.so);
    }

    #[test]
    fn multiplier_attenuates_more_than_adder() {
        let build = |kind: OpKind| {
            let mut b = DfgBuilder::new("t");
            let a = b.input("a");
            let c = b.input("c");
            let y = b.op("N1", kind, &[a, c], "y").unwrap();
            b.mark_output(y);
            b.finish().unwrap()
        };
        let get_cc = |d: &Dfg| {
            let (e, _, alloc) = lower(d);
            let dp = e.data_path();
            let ta = TestabilityAnalysis::analyze(dp);
            let y = d.value_by_name("y").unwrap();
            let r = dp.node_of_register(alloc.register_of(y).unwrap()).unwrap();
            ta.output_controllability(r).cc
        };
        let da = build(OpKind::Add);
        let dm = build(OpKind::Mul);
        assert!(get_cc(&da) > get_cc(&dm));
    }

    #[test]
    fn self_loop_converges_and_depresses_metrics() {
        // x1 = x + dx, loop x1 -> x, with x and x1 sharing a register:
        // the register feeds the adder which feeds the register.
        let mut b = DfgBuilder::new("loopy");
        let x = b.input("x");
        let dx = b.input("dx");
        let x1 = b.op("N1", OpKind::Add, &[x, dx], "x1").unwrap();
        b.mark_output(x1);
        b.loop_carried(x1, x);
        let d = b.finish().unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        let mut alloc = Allocation::one_to_one(&d);
        let rx = alloc.register_of(x).unwrap();
        let rx1 = alloc.register_of(d.value_by_name("x1").unwrap()).unwrap();
        alloc.merge_registers(rx, rx1).unwrap();
        let e = Etpn::from_parts(&d, &s, &alloc).unwrap();
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        assert!(ta.sweeps_used() < 64, "fixpoint must converge");
        let rn = dp.node_of_register(rx).unwrap();
        assert!(dp.on_self_loop(rn));
        let c = ta.output_controllability(rn);
        // still controllable (via the PI load path) but cheap
        assert!(c.cc > 0.0);
    }

    #[test]
    fn node_summaries_use_best_lines() {
        let d = chain(1);
        let (e, _, _) = lower(&d);
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        // module node: controllability = best input line = register of a
        // or c, both fed by PIs at sc=1
        for m in dp.module_nodes() {
            let c = ta.node_controllability(dp, m);
            assert!(c.cc > 0.9);
            assert_eq!(c.sc, 1.0);
        }
    }

    #[test]
    fn scalar_ordering() {
        let good = Controllability { cc: 1.0, sc: 0.0 };
        let mid = Controllability { cc: 1.0, sc: 3.0 };
        let bad = Controllability::none();
        assert!(good.scalar() > mid.scalar());
        assert!(mid.scalar() > bad.scalar());
        let o1 = Observability { co: 0.9, so: 1.0 };
        assert!(o1.scalar() > Observability::none().scalar());
    }

    #[test]
    fn worklist_matches_dense_on_chains_and_loops() {
        for len in 1..6 {
            let d = chain(len);
            let (e, _, _) = lower(&d);
            let dp = e.data_path();
            let wl = TestabilityAnalysis::analyze(dp);
            let dense = TestabilityAnalysis::analyze_dense(dp);
            assert!(wl == dense, "len={len}: worklist diverged from dense");
            assert_eq!(wl.sweeps_used(), dense.sweeps_used(), "len={len}");
            assert!(wl.has_history());
            assert!(!dense.has_history());
        }
    }

    #[test]
    fn histories_start_at_seed_and_are_monotone_in_sweep() {
        let d = chain(3);
        let (e, _, _) = lower(&d);
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        assert_eq!(ta.ctrl_hist.len(), dp.num_nodes());
        for i in 0..ta.ctrl_hist.len() {
            let h = ta.ctrl_hist.slice(i);
            assert_eq!(h.first().map(|&(s, _)| s), Some(0), "node {i} seed");
            assert!(h.windows(2).all(|w| w[0].0 < w[1].0), "node {i} stamps");
            let last = h.last().expect("seeded").1;
            assert_eq!(last, ta.out_ctrl[i], "node {i} final");
        }
    }
}
