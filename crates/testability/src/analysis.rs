//! The CC/SC/CO/SO fixpoint analysis over an ETPN data path.

use hlts_dfg::OpKind;
use hlts_etpn::{DataPath, DpArcId, DpNodeId, DpNodeKind};

use crate::factors::{ctf, otf};

/// Sequential-cost sentinel for "not yet reachable".
const UNREACHED: f64 = 1.0e9;
/// Weight of the sequential factor when scalarizing a measure for
/// comparisons (one extra time frame ≈ 5% combinational quality).
const SEQ_WEIGHT: f64 = 0.05;
/// Fixpoint iteration cap (loops converge geometrically; this bounds
/// pathological inputs).
const MAX_SWEEPS: usize = 64;
const EPS: f64 = 1.0e-9;

/// Controllability of a line or node: combinational factor `cc ∈ [0, 1]`
/// (1 = freely controllable) and sequential factor `sc ≥ 0` (time frames
/// needed to load a value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Controllability {
    /// Combinational controllability.
    pub cc: f64,
    /// Sequential controllability (time frames).
    pub sc: f64,
}

impl Controllability {
    /// The uncontrollable bottom element.
    #[must_use]
    pub fn none() -> Self {
        Controllability {
            cc: 0.0,
            sc: UNREACHED,
        }
    }

    /// Scalar quality for ranking: `cc − w·sc` (higher is better).
    #[must_use]
    pub fn scalar(self) -> f64 {
        if self.sc >= UNREACHED {
            return 0.0;
        }
        (self.cc - SEQ_WEIGHT * self.sc).max(0.0)
    }

    /// Unclamped ordering key for the fixpoint: unlike
    /// [`Controllability::scalar`], deeply attenuated values stay
    /// comparable instead of saturating at zero.
    fn rank(self) -> f64 {
        if self.sc >= UNREACHED {
            return f64::NEG_INFINITY;
        }
        self.cc - SEQ_WEIGHT * self.sc
    }

    fn better_than(self, other: Controllability) -> bool {
        self.rank() > other.rank() + EPS
    }
}

/// Observability of a line or node: combinational factor `co ∈ [0, 1]`
/// (1 = directly observable) and sequential factor `so ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observability {
    /// Combinational observability.
    pub co: f64,
    /// Sequential observability (time frames).
    pub so: f64,
}

impl Observability {
    /// The unobservable bottom element.
    #[must_use]
    pub fn none() -> Self {
        Observability {
            co: 0.0,
            so: UNREACHED,
        }
    }

    /// Scalar quality for ranking: `co − w·so` (higher is better).
    #[must_use]
    pub fn scalar(self) -> f64 {
        if self.so >= UNREACHED {
            return 0.0;
        }
        (self.co - SEQ_WEIGHT * self.so).max(0.0)
    }

    /// Unclamped ordering key for the fixpoint (see
    /// [`Controllability`]'s equivalent).
    fn rank(self) -> f64 {
        if self.so >= UNREACHED {
            return f64::NEG_INFINITY;
        }
        self.co - SEQ_WEIGHT * self.so
    }

    fn better_than(self, other: Observability) -> bool {
        self.rank() > other.rank() + EPS
    }
}

/// The full analysis result: per-node output-line controllability and
/// per-arc observability, plus the node summaries of the paper's §3.
#[derive(Debug, Clone)]
pub struct TestabilityAnalysis {
    /// Controllability of each node's output line.
    out_ctrl: Vec<Controllability>,
    /// Observability of each arc (a line into its sink).
    arc_obs: Vec<Observability>,
    sweeps_used: usize,
}

impl TestabilityAnalysis {
    /// Run the analysis to fixpoint.
    ///
    /// Initialization follows the paper: "assigns first ones to CCs and
    /// zeros to SCs for all primary inputs in the data path ... these
    /// values will then be propagated ... until the primary outputs are
    /// reached. A similar approach can be used for calculating
    /// observability in the reverse direction." Feedback loops are
    /// handled by sweeping to a fixpoint from a pessimistic start.
    #[must_use]
    pub fn analyze(dp: &DataPath) -> Self {
        let n = dp.num_nodes();
        let mut out_ctrl = vec![Controllability::none(); n];

        // Seed sources.
        for node in dp.nodes() {
            out_ctrl[node.id().index()] = match node.kind() {
                DpNodeKind::PrimaryInput(_) => Controllability { cc: 1.0, sc: 0.0 },
                // A constant drives one fixed value: usable, but useless
                // for justifying arbitrary patterns.
                DpNodeKind::Const(_) => Controllability { cc: 0.5, sc: 0.0 },
                _ => Controllability::none(),
            };
        }

        // Forward fixpoint for controllability.
        let mut sweeps_used = 0;
        for sweep in 0..MAX_SWEEPS {
            sweeps_used = sweep + 1;
            let mut changed = false;
            for node in dp.nodes() {
                let i = node.id().index();
                let new = match node.kind() {
                    DpNodeKind::PrimaryInput(_) | DpNodeKind::Const(_) => continue,
                    DpNodeKind::Register(_) => {
                        // best over input lines, plus one time frame
                        let best = best_input(dp, node.id(), &out_ctrl);
                        Controllability {
                            cc: best.cc,
                            sc: if best.sc >= UNREACHED {
                                UNREACHED
                            } else {
                                best.sc + 1.0
                            },
                        }
                    }
                    DpNodeKind::Module { kinds, .. } => {
                        module_output_ctrl(dp, node.id(), kinds.iter().copied(), &out_ctrl)
                    }
                    // Ports/conditions produce nothing further.
                    DpNodeKind::PrimaryOutput(_) | DpNodeKind::ConditionOut(_) => continue,
                    _ => continue,
                };
                if new.better_than(out_ctrl[i]) {
                    out_ctrl[i] = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Backward fixpoint for observability, per arc.
        let mut arc_obs = vec![Observability::none(); dp.num_arcs()];
        // node output observability = best over its out-arcs
        let node_out_obs = |dp: &DataPath, arc_obs: &[Observability], n: DpNodeId| {
            dp.out_arcs(n).iter().map(|a| arc_obs[a.id().index()]).fold(
                Observability::none(),
                |acc, o| {
                    if o.better_than(acc) {
                        o
                    } else {
                        acc
                    }
                },
            )
        };
        for _sweep in 0..MAX_SWEEPS {
            let mut changed = false;
            for arc in dp.arcs() {
                let sink = dp.node(arc.to());
                let new = match sink.kind() {
                    DpNodeKind::PrimaryOutput(_) => Observability { co: 1.0, so: 0.0 },
                    // a condition is observed through the controller's
                    // branching behavior: indirect but cheap
                    DpNodeKind::ConditionOut(_) => Observability { co: 0.9, so: 0.0 },
                    DpNodeKind::Register(_) => {
                        let out = node_out_obs(dp, &arc_obs, sink.id());
                        Observability {
                            co: out.co,
                            so: if out.so >= UNREACHED {
                                UNREACHED
                            } else {
                                out.so + 1.0
                            },
                        }
                    }
                    DpNodeKind::Module { kinds, .. } => {
                        let out = node_out_obs(dp, &arc_obs, sink.id());
                        if out.so >= UNREACHED {
                            Observability::none()
                        } else {
                            // propagating through the module requires
                            // controlling its other input ports
                            let side = side_ports_ctrl(dp, sink.id(), arc.port(), &out_ctrl);
                            let f = kinds.iter().copied().map(otf).fold(1.0, f64::min);
                            Observability {
                                co: f * out.co * side.cc,
                                so: out.so
                                    + if side.sc >= UNREACHED {
                                        // no side value needed (unary)
                                        0.0
                                    } else {
                                        side.sc
                                    },
                            }
                        }
                    }
                    _ => Observability::none(),
                };
                let slot = &mut arc_obs[arc.id().index()];
                if new.better_than(*slot) {
                    *slot = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        TestabilityAnalysis {
            out_ctrl,
            arc_obs,
            sweeps_used,
        }
    }

    /// Controllability of a node's output line.
    #[must_use]
    pub fn output_controllability(&self, node: DpNodeId) -> Controllability {
        self.out_ctrl[node.index()]
    }

    /// Observability of a specific arc (line).
    #[must_use]
    pub fn arc_observability(&self, arc: DpArcId) -> Observability {
        self.arc_obs[arc.index()]
    }

    /// The paper's node controllability: the best controllability of any
    /// of the node's *input* lines (an input line carries the source
    /// node's output controllability). Source nodes (PIs, constants) use
    /// their own output controllability.
    #[must_use]
    pub fn node_controllability(&self, dp: &DataPath, node: DpNodeId) -> Controllability {
        let ins = dp.in_arcs(node);
        if ins.is_empty() {
            return self.out_ctrl[node.index()];
        }
        ins.iter().map(|a| self.out_ctrl[a.from().index()]).fold(
            Controllability::none(),
            |acc, c| {
                if c.better_than(acc) {
                    c
                } else {
                    acc
                }
            },
        )
    }

    /// The paper's node observability: the best observability of any of
    /// the node's *output* lines.
    #[must_use]
    pub fn node_observability(&self, dp: &DataPath, node: DpNodeId) -> Observability {
        dp.out_arcs(node)
            .iter()
            .map(|a| self.arc_obs[a.id().index()])
            .fold(Observability::none(), |acc, o| {
                if o.better_than(acc) {
                    o
                } else {
                    acc
                }
            })
    }

    /// Number of forward sweeps the fixpoint needed (diagnostics).
    #[must_use]
    pub fn sweeps_used(&self) -> usize {
        self.sweeps_used
    }
}

/// Best controllability over all input lines of `node`.
fn best_input(dp: &DataPath, node: DpNodeId, out_ctrl: &[Controllability]) -> Controllability {
    dp.in_arcs(node)
        .iter()
        .map(|a| out_ctrl[a.from().index()])
        .fold(Controllability::none(), |acc, c| {
            if c.better_than(acc) {
                c
            } else {
                acc
            }
        })
}

/// Output controllability of a module: CTF × the *worst* port (to control
/// the output you must control every input port; each port contributes
/// its best source).
fn module_output_ctrl(
    dp: &DataPath,
    node: DpNodeId,
    kinds: impl Iterator<Item = OpKind>,
    out_ctrl: &[Controllability],
) -> Controllability {
    let f = kinds.map(ctf).fold(1.0, f64::min);
    let ins = dp.in_arcs(node);
    let max_port = ins.iter().map(|a| a.port()).max().unwrap_or(0);
    let mut cc: f64 = 1.0;
    let mut sc: f64 = 0.0;
    for port in 0..=max_port {
        let best = ins
            .iter()
            .filter(|a| a.port() == port)
            .map(|a| out_ctrl[a.from().index()])
            .fold(Controllability::none(), |acc, c| {
                if c.better_than(acc) {
                    c
                } else {
                    acc
                }
            });
        cc = cc.min(best.cc);
        sc = sc.max(best.sc);
    }
    if sc >= UNREACHED || ins.is_empty() {
        return Controllability::none();
    }
    Controllability { cc: f * cc, sc }
}

/// Combined controllability of all ports of `node` other than `port` —
/// the side values that must be justified to propagate through the
/// module. Returns the *worst* side port (all must be set).
fn side_ports_ctrl(
    dp: &DataPath,
    node: DpNodeId,
    port: usize,
    out_ctrl: &[Controllability],
) -> Controllability {
    let ins = dp.in_arcs(node);
    let max_port = ins.iter().map(|a| a.port()).max().unwrap_or(0);
    let mut cc: f64 = 1.0;
    let mut sc: f64 = 0.0;
    let mut any = false;
    for p in 0..=max_port {
        if p == port {
            continue;
        }
        let best = ins
            .iter()
            .filter(|a| a.port() == p)
            .map(|a| out_ctrl[a.from().index()])
            .fold(Controllability::none(), |acc, c| {
                if c.better_than(acc) {
                    c
                } else {
                    acc
                }
            });
        if best.sc >= UNREACHED {
            return Controllability::none();
        }
        any = true;
        cc = cc.min(best.cc);
        sc = sc.max(best.sc);
    }
    if any {
        Controllability { cc, sc }
    } else {
        // unary module: nothing to justify
        Controllability {
            cc: 1.0,
            sc: UNREACHED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_alloc::Allocation;
    use hlts_dfg::{Dfg, DfgBuilder, OpKind};
    use hlts_etpn::Etpn;
    use hlts_sched::{list_schedule, ListPriority, Schedule};

    fn lower(dfg: &Dfg) -> (Etpn, Schedule, Allocation) {
        let s = list_schedule(dfg, &[], ListPriority::CriticalPath).unwrap();
        let a = Allocation::one_to_one(dfg);
        let e = Etpn::from_parts(dfg, &s, &a).unwrap();
        (e, s, a)
    }

    fn chain(len: usize) -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let a = b.input("a");
        let c = b.input("c");
        let mut cur = a;
        for i in 0..len {
            cur = b
                .op(&format!("N{i}"), OpKind::Add, &[cur, c], &format!("t{i}"))
                .unwrap();
        }
        b.mark_output(cur);
        b.finish().unwrap()
    }

    #[test]
    fn primary_input_is_fully_controllable() {
        let d = chain(2);
        let (e, _, _) = lower(&d);
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        for node in dp.nodes() {
            if node.kind().is_primary_input() {
                let c = ta.output_controllability(node.id());
                assert_eq!(c.cc, 1.0);
                assert_eq!(c.sc, 0.0);
            }
        }
    }

    #[test]
    fn sc_counts_register_stages() {
        let d = chain(3);
        let (e, _, alloc) = lower(&d);
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        // register of t0: PI -> R(a) -> FU -> R(t0): 2 time frames
        let t0 = d.value_by_name("t0").unwrap();
        let r0 = dp.node_of_register(alloc.register_of(t0).unwrap()).unwrap();
        let c0 = ta.output_controllability(r0);
        let t2 = d.value_by_name("t2").unwrap();
        let r2 = dp.node_of_register(alloc.register_of(t2).unwrap()).unwrap();
        let c2 = ta.output_controllability(r2);
        assert!(c2.sc > c0.sc, "deeper register has larger SC");
        assert!(c2.cc < c0.cc, "deeper register has smaller CC");
    }

    #[test]
    fn so_counts_stages_to_output() {
        let d = chain(3);
        let (e, _, alloc) = lower(&d);
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        let near = d.value_by_name("t2").unwrap(); // output, directly observed
        let far = d.value_by_name("t0").unwrap();
        let rn = dp
            .node_of_register(alloc.register_of(near).unwrap())
            .unwrap();
        let rf = dp
            .node_of_register(alloc.register_of(far).unwrap())
            .unwrap();
        let on = ta.node_observability(dp, rn);
        let of_ = ta.node_observability(dp, rf);
        assert!(on.scalar() > of_.scalar());
        assert!(of_.so > on.so);
    }

    #[test]
    fn multiplier_attenuates_more_than_adder() {
        let build = |kind: OpKind| {
            let mut b = DfgBuilder::new("t");
            let a = b.input("a");
            let c = b.input("c");
            let y = b.op("N1", kind, &[a, c], "y").unwrap();
            b.mark_output(y);
            b.finish().unwrap()
        };
        let get_cc = |d: &Dfg| {
            let (e, _, alloc) = lower(d);
            let dp = e.data_path();
            let ta = TestabilityAnalysis::analyze(dp);
            let y = d.value_by_name("y").unwrap();
            let r = dp.node_of_register(alloc.register_of(y).unwrap()).unwrap();
            ta.output_controllability(r).cc
        };
        let da = build(OpKind::Add);
        let dm = build(OpKind::Mul);
        assert!(get_cc(&da) > get_cc(&dm));
    }

    #[test]
    fn self_loop_converges_and_depresses_metrics() {
        // x1 = x + dx, loop x1 -> x, with x and x1 sharing a register:
        // the register feeds the adder which feeds the register.
        let mut b = DfgBuilder::new("loopy");
        let x = b.input("x");
        let dx = b.input("dx");
        let x1 = b.op("N1", OpKind::Add, &[x, dx], "x1").unwrap();
        b.mark_output(x1);
        b.loop_carried(x1, x);
        let d = b.finish().unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        let mut alloc = Allocation::one_to_one(&d);
        let rx = alloc.register_of(x).unwrap();
        let rx1 = alloc.register_of(d.value_by_name("x1").unwrap()).unwrap();
        alloc.merge_registers(rx, rx1).unwrap();
        let e = Etpn::from_parts(&d, &s, &alloc).unwrap();
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        assert!(ta.sweeps_used() < 64, "fixpoint must converge");
        let rn = dp.node_of_register(rx).unwrap();
        assert!(dp.on_self_loop(rn));
        let c = ta.output_controllability(rn);
        // still controllable (via the PI load path) but cheap
        assert!(c.cc > 0.0);
    }

    #[test]
    fn node_summaries_use_best_lines() {
        let d = chain(1);
        let (e, _, _) = lower(&d);
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        // module node: controllability = best input line = register of a
        // or c, both fed by PIs at sc=1
        for m in dp.module_nodes() {
            let c = ta.node_controllability(dp, m);
            assert!(c.cc > 0.9);
            assert_eq!(c.sc, 1.0);
        }
    }

    #[test]
    fn scalar_ordering() {
        let good = Controllability { cc: 1.0, sc: 0.0 };
        let mid = Controllability { cc: 1.0, sc: 3.0 };
        let bad = Controllability::none();
        assert!(good.scalar() > mid.scalar());
        assert!(mid.scalar() > bad.scalar());
        let o1 = Observability { co: 0.9, so: 1.0 };
        assert!(o1.scalar() > Observability::none().scalar());
    }
}
