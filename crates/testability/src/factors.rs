//! Controllability/observability transfer factors per operation kind.
//!
//! A transfer factor in `(0, 1]` models how much of a line's
//! controllability (observability) survives propagation through a module
//! of the given kind — the per-module ingredient of Gu et al.'s metric.
//! Easy, information-preserving operations (add, xor, move) transfer
//! nearly everything; information-losing operations (multiply, compare)
//! attenuate strongly. The exact values are calibration constants; only
//! their ordering matters for the synthesis decisions.

use hlts_dfg::OpKind;

/// Controllability transfer factor: how controllable a module's output is
/// given perfectly controllable inputs.
#[must_use]
pub fn ctf(kind: OpKind) -> f64 {
    match kind {
        OpKind::Add | OpKind::Sub => 0.95,
        OpKind::Mul => 0.60,
        OpKind::Lt | OpKind::Gt | OpKind::Eq => 0.50,
        OpKind::And | OpKind::Or => 0.80,
        OpKind::Xor => 0.95,
        OpKind::Not | OpKind::Mov => 1.0,
        OpKind::Shl | OpKind::Shr => 0.90,
        // Future kinds: conservative default.
        _ => 0.50,
    }
}

/// Observability transfer factor: how observable a module's input is
/// through its output, given controllable side inputs.
#[must_use]
pub fn otf(kind: OpKind) -> f64 {
    match kind {
        OpKind::Add | OpKind::Sub => 0.95,
        OpKind::Mul => 0.55,
        OpKind::Lt | OpKind::Gt | OpKind::Eq => 0.30,
        OpKind::And | OpKind::Or => 0.70,
        OpKind::Xor => 0.95,
        OpKind::Not | OpKind::Mov => 1.0,
        OpKind::Shl | OpKind::Shr => 0.85,
        _ => 0.40,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_in_unit_interval() {
        for &k in OpKind::all() {
            assert!(ctf(k) > 0.0 && ctf(k) <= 1.0, "{k:?}");
            assert!(otf(k) > 0.0 && otf(k) <= 1.0, "{k:?}");
        }
    }

    #[test]
    fn orderings_match_difficulty() {
        assert!(ctf(OpKind::Add) > ctf(OpKind::Mul));
        assert!(ctf(OpKind::Mul) > ctf(OpKind::Lt) - 0.2);
        assert!(otf(OpKind::Add) > otf(OpKind::Mul));
        assert!(otf(OpKind::Mul) > otf(OpKind::Lt));
    }
}
