//! # hlts-testability — RT-level testability analysis
//!
//! The testability-analysis half of the `hlts` system, after Gu,
//! Kuchcinski & Peng ("Testability analysis and improvement from VHDL
//! behavioral specifications", EURO-DAC 1994), operating on the ETPN
//! data path:
//!
//! * [`TestabilityAnalysis`] — computes the four measures of the paper's
//!   §2 for every data-path line: **combinational controllability** (CC),
//!   **sequential controllability** (SC), **combinational observability**
//!   (CO) and **sequential observability** (SO); controllabilities
//!   propagate forward from primary inputs, observabilities backward from
//!   primary outputs, with a fixpoint iteration handling feedback loops;
//! * node summaries per the paper's §3: a node's controllability is the
//!   *best* controllability of any of its input lines, its observability
//!   the *best* observability of any of its output lines;
//! * [`balance_score`] — the controllability/observability *balance*
//!   objective that drives merge-pair selection ("fold nodes with good
//!   controllability and bad observability to nodes with good
//!   observability and bad controllability");
//! * [`sequential_depth`] and [`total_co_depth`] — the register-to-
//!   register sequential-depth metrics behind Lee et al.'s rule SR1 and
//!   the paper's rescheduling strategy SR2.
//!
//! The analysis itself comes in three flavors sharing one transfer
//! function: the production **worklist** solver
//! ([`TestabilityAnalysis::analyze`]), the dense Gauss–Seidel
//! **reference** ([`TestabilityAnalysis::analyze_dense`]) it is
//! property-tested bit-identical to, and the **incremental** replay
//! ([`TestabilityAnalysis::reanalyze`]) that re-solves only the dirty
//! cone of a structurally close data path. [`TestabilityEngine`] caches
//! all of it behind a structural hash so a synthesis run's candidate
//! evaluations — including parallel ones — share results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod balance;
mod depth;
mod engine;
mod factors;
mod incremental;
mod worklist;

pub use analysis::{Controllability, Observability, TestabilityAnalysis};
pub use engine::{TestabilityCacheStats, TestabilityEngine};
pub use balance::{balance_score, balance_score_profiles, NodeProfile};
pub use depth::{register_adjacency, sequential_depth, total_co_depth};
pub use factors::{ctf, otf};
