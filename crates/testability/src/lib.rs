//! # hlts-testability — RT-level testability analysis
//!
//! The testability-analysis half of the `hlts` system, after Gu,
//! Kuchcinski & Peng ("Testability analysis and improvement from VHDL
//! behavioral specifications", EURO-DAC 1994), operating on the ETPN
//! data path:
//!
//! * [`TestabilityAnalysis`] — computes the four measures of the paper's
//!   §2 for every data-path line: **combinational controllability** (CC),
//!   **sequential controllability** (SC), **combinational observability**
//!   (CO) and **sequential observability** (SO); controllabilities
//!   propagate forward from primary inputs, observabilities backward from
//!   primary outputs, with a fixpoint iteration handling feedback loops;
//! * node summaries per the paper's §3: a node's controllability is the
//!   *best* controllability of any of its input lines, its observability
//!   the *best* observability of any of its output lines;
//! * [`balance_score`] — the controllability/observability *balance*
//!   objective that drives merge-pair selection ("fold nodes with good
//!   controllability and bad observability to nodes with good
//!   observability and bad controllability");
//! * [`sequential_depth`] and [`total_co_depth`] — the register-to-
//!   register sequential-depth metrics behind Lee et al.'s rule SR1 and
//!   the paper's rescheduling strategy SR2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod balance;
mod depth;
mod factors;

pub use analysis::{Controllability, Observability, TestabilityAnalysis};
pub use balance::{balance_score, balance_score_profiles, NodeProfile};
pub use depth::{register_adjacency, sequential_depth, total_co_depth};
pub use factors::{ctf, otf};
