//! Incremental re-analysis by divergence-bounded history replay.
//!
//! [`TestabilityAnalysis::reanalyze`] produces, for a data path that
//! differs from a previously analyzed one in a small region (one merge's
//! fan-in/fan-out cone), the **bit-identical** result a fresh
//! [`TestabilityAnalysis::analyze`] would — while only evaluating the
//! region whose behavior actually changed.
//!
//! The naïve approach — seed the dirty region and iterate against the
//! previous *final* values — is **not** bit-identical: the dense
//! Gauss–Seidel fixpoint is path-dependent. The module transfer function
//! is not monotone in rank (a predecessor improving from
//! `(cc 0.5, sc 0)` to `(cc 1.0, sc 5)` can *lower* a downstream
//! module's rank), so an element's accepted value depends on the order
//! in which its inputs' intermediate values became visible, and the
//! final solution locks in such transients. Replaying only against
//! final values would converge to a different (also valid, but not
//! identical) fixpoint — and the golden pins demand identity.
//!
//! So the worklist solver records, per element, the sweep-stamped
//! sequence of accepted values (its *history*), and `reanalyze` replays
//! the structural delta **through time**:
//!
//! 1. **Diff.** Nodes of the old and new data path are matched by
//!    allocation identity (kind class + allocation id, order-preserving,
//!    same transfer function); arcs through their matched endpoints.
//!    Unmatched or rewired elements and caller-supplied extras form the
//!    initial *re-evaluated set* `R`; everything else starts as
//!    *boundary* and keeps its previous history verbatim.
//! 2. **Replay with divergence bounding.** Members of `R` are scheduled
//!    exactly as a full worklist run would schedule them: sweep 1, plus
//!    one wake-up per input history event, plus one wake-up at each of
//!    their *own* previous event positions (so a change that silences an
//!    old event is noticed). Each matched member carries a cursor into
//!    its previous history. As long as its accepted events reproduce
//!    that history bit-for-bit at the same `(sweep, index)` positions,
//!    the element is *consistent*: its successors outside `R` do not
//!    need to know it was re-evaluated, because they would read exactly
//!    what the previous run read. Only when an element **diverges** —
//!    accepts a different value, accepts at a different position, or
//!    fails to accept where its old history has an event — are its
//!    boundary successors pulled into `R`: each is *activated* by
//!    keeping the prefix of its previous history that Gauss–Seidel
//!    order still makes valid (events strictly before the divergence
//!    position) and re-evaluating from there.
//!
//! Why this is identical to a full run `F = analyze(dp)`, by induction
//! over `(sweep, index)` positions: a boundary element's inputs are all
//! boundary or consistent, so its `F`-evaluations reproduce its previous
//! history; an `R` element reads, at every evaluation, either a live
//! `R` value (equal to `F`'s by induction) or a boundary history lookup
//! (equal to `F`'s stream by the same argument) — and every position
//! where `F` accepts is scheduled here, because accepted changes wake
//! successors, divergence wakes activate kept-prefix successors (plus
//! catch-up evaluations for wakes the activation itself superseded), and
//! old-event positions are woken explicitly. Extra evaluations are
//! harmless: an evaluation `F` does not perform sees inputs unchanged
//! since the last one `F` did perform, so the acceptance test fails the
//! same way. The same machinery runs backwards for the observability
//! pass over arcs, whose side inputs additionally include the (by then
//! final) controllability solution — a matched arc joins the initial
//! `R` if its sink's identity, wiring, or any sink-predecessor's final
//! controllability changed.

use hlts_etpn::{DataPath, DpArcId, DpNodeId, DpNodeKind};

use crate::analysis::{
    ctrl_candidate, ctrl_seed, forward_evaluable, obs_candidate, Controllability, Histories,
    History, Observability, TestabilityAnalysis, MAX_SWEEPS,
};
use crate::worklist::Worklist;

/// Allocation-level identity class of a data-path node: a small class
/// tag plus the allocation-side index, used to match nodes across two
/// lowerings of slightly different designs without allocating. Module
/// nodes additionally compare their operation sets at match time (a
/// merge survivor keeps its id but changes its transfer function).
const NODE_CLASSES: usize = 6;

fn class_id(kind: &DpNodeKind) -> Option<(usize, usize)> {
    Some(match kind {
        DpNodeKind::PrimaryInput(v) => (0, v.index()),
        DpNodeKind::PrimaryOutput(v) => (1, v.index()),
        DpNodeKind::Register(r) => (2, r.index()),
        DpNodeKind::Module { id, .. } => (3, id.index()),
        DpNodeKind::Const(v) => (4, v.index()),
        DpNodeKind::ConditionOut(v) => (5, v.index()),
        // Unknown future node kinds can't be matched; treat as new.
        _ => return None,
    })
}

/// Node index per `(class, id)` slot, with duplicate slots (ambiguous
/// identities) poisoned so they can never match.
struct SlotTable {
    stride: usize,
    slots: Vec<u32>,
}

const SLOT_EMPTY: u32 = u32::MAX;
const SLOT_DUP: u32 = u32::MAX - 1;

impl SlotTable {
    fn build(dp: &DataPath, stride: usize) -> SlotTable {
        let mut slots = vec![SLOT_EMPTY; NODE_CLASSES * stride];
        for (i, node) in dp.nodes().iter().enumerate() {
            if let Some((class, id)) = class_id(node.kind()) {
                let s = &mut slots[class * stride + id];
                *s = if *s == SLOT_EMPTY { i as u32 } else { SLOT_DUP };
            }
        }
        SlotTable { stride, slots }
    }

    fn get(&self, class: usize, id: usize) -> Option<usize> {
        match self.slots[class * self.stride + id] {
            SLOT_EMPTY | SLOT_DUP => None,
            i => Some(i as usize),
        }
    }
}

/// The widest `(class, id)` slot either data path needs.
fn slot_stride(dp: &DataPath) -> usize {
    dp.nodes()
        .iter()
        .filter_map(|n| class_id(n.kind()))
        .map(|(_, id)| id + 1)
        .max()
        .unwrap_or(0)
}

/// Whether two node kinds denote the *same transfer function*, not just
/// the same allocation identity (module operation sets may differ).
fn same_kind(a: &DpNodeKind, b: &DpNodeKind) -> bool {
    match (a, b) {
        (DpNodeKind::Module { kinds: ka, .. }, DpNodeKind::Module { kinds: kb, .. }) => ka == kb,
        _ => true, // same (class, id) is already exact for other classes
    }
}

/// The value of a history as seen by element `observer` being evaluated
/// during `sweep`: the last accepted update that dense Gauss–Seidel
/// order makes visible (strictly earlier sweeps, or the same sweep from
/// a smaller index).
fn hist_at<T: Copy>(h: &[(u32, T)], sweep: u32, src: usize, observer: usize) -> T {
    let mut v = h.first().expect("histories start with a seed").1;
    for &(s, val) in h {
        if s < sweep || (s == sweep && src < observer) {
            v = val;
        } else {
            break;
        }
    }
    v
}

/// Exact (bitwise) value equality — the divergence test. `PartialEq`
/// on floats would do here too, but bit comparison states the contract:
/// consistency means the previous run's value, not merely an equal one.
trait BitEq: Copy {
    fn bit_eq(self, other: Self) -> bool;
}

impl BitEq for Controllability {
    fn bit_eq(self, other: Self) -> bool {
        self.cc.to_bits() == other.cc.to_bits() && self.sc.to_bits() == other.sc.to_bits()
    }
}

impl BitEq for Observability {
    fn bit_eq(self, other: Self) -> bool {
        self.co.to_bits() == other.co.to_bits() && self.so.to_bits() == other.so.to_bits()
    }
}

/// Schedule the evaluation an event at `(event_sweep, src)` would wake
/// `dst` for, but only if that position is still ahead of the current
/// pop position `now` (earlier positions are already covered by kept
/// prefixes, and pushing behind the pop would break evaluation order).
fn push_future(wl: &mut Worklist, event_sweep: u32, src: usize, dst: usize, now: (u32, usize)) {
    let target = if dst > src { event_sweep } else { event_sweep + 1 };
    if (target, dst) > now {
        wl.push(target, dst);
    }
}

/// Shared state of one divergence-bounded replay pass (forward over
/// nodes or backward over arcs).
struct Replay<'p, T: BitEq> {
    /// Previous-run histories, indexed by *previous* element index.
    prev: &'p Histories<T>,
    /// New-index → previous-index element matching.
    matched: &'p [Option<usize>],
    /// Membership in the re-evaluated set `R`.
    in_r: Vec<bool>,
    /// Whether the element's accepted stream has left its previous
    /// history (frozen once set; boundary successors were activated).
    diverged: Vec<bool>,
    /// Cursor into the previous history: the next event the element is
    /// expected to reproduce (valid for matched members of `R`).
    cursor: Vec<u32>,
    /// Accepted events of `R` members, kept prefix included.
    hist: Vec<History<T>>,
    /// Current value per element (boundary elements hold their final
    /// previous value, which equals their final new value).
    value: Vec<T>,
    last_change: u32,
    updates: u64,
}

impl<'p, T: BitEq> Replay<'p, T> {
    fn new(
        count: usize,
        prev: &'p Histories<T>,
        matched: &'p [Option<usize>],
        prev_final: &[T],
        bottom: T,
    ) -> Self {
        let value = (0..count)
            .map(|i| matched[i].map_or(bottom, |p| prev_final[p]))
            .collect();
        Replay {
            prev,
            matched,
            in_r: vec![false; count],
            diverged: vec![false; count],
            cursor: vec![0; count],
            hist: vec![Vec::new(); count],
            value,
            last_change: 0,
            updates: 0,
        }
    }

    /// Put `i` in `R` from the start, seeded fresh. Matched members
    /// still carry their expectation cursor (they may reproduce their
    /// old stream and never propagate); unmatched members have no
    /// history to be consistent with.
    fn join_initial(&mut self, i: usize, seed: T) {
        self.in_r[i] = true;
        self.hist[i].push((0, seed));
        self.value[i] = seed;
        match self.matched[i] {
            Some(_) => self.cursor[i] = 1, // seeds agree; expect the rest
            None => self.diverged[i] = true,
        }
    }

    /// Pull boundary element `x` into `R` at divergence position
    /// `(sweep, src)`: keep the prefix of its previous history that
    /// Gauss–Seidel order still makes valid, re-evaluate from there.
    fn activate(&mut self, x: usize, sweep: u32, src: usize) {
        debug_assert!(!self.in_r[x]);
        self.in_r[x] = true;
        let p = self.matched[x].expect("boundary elements are matched");
        let full = self.prev.slice(p);
        let keep = full
            .iter()
            .take_while(|&&(s, _)| s < sweep || (s == sweep && x < src))
            .count();
        self.hist[x].extend_from_slice(&full[..keep]);
        let &(ls, lv) = full[..keep].last().expect("histories start with a seed");
        self.value[x] = lv;
        self.last_change = self.last_change.max(ls);
        self.cursor[x] = keep as u32;
    }

    /// The element's not-yet-reproduced previous events — its
    /// expectations, or (at the moment of divergence) the dead suffix
    /// of its old stream, whose positions must still be checked or
    /// woken downstream.
    fn expected(&self, i: usize) -> &[(u32, T)] {
        match self.matched[i] {
            Some(p) => &self.prev.slice(p)[self.cursor[i] as usize..],
            None => &[],
        }
    }

    /// Record the outcome of evaluating `i` at `sweep` and classify it
    /// against the element's expectations. Returns `(accepted,
    /// newly_diverged)`.
    fn reconcile(&mut self, i: usize, sweep: u32, accepted: Option<T>) -> (bool, bool) {
        if let Some(v) = accepted {
            self.value[i] = v;
            self.hist[i].push((sweep, v));
            self.last_change = self.last_change.max(sweep);
            self.updates += 1;
        }
        if self.diverged[i] {
            return (accepted.is_some(), false);
        }
        let expected = self.matched[i]
            .and_then(|p| self.prev.slice(p).get(self.cursor[i] as usize).copied());
        let newly = match (accepted, expected) {
            (Some(v), Some((s, old))) if s == sweep && old.bit_eq(v) => {
                self.cursor[i] += 1;
                false
            }
            // an accept the old stream doesn't have here
            (Some(_), _) => true,
            // no accept where the old stream has an event due
            (None, Some((s, _))) if s <= sweep => true,
            (None, _) => false,
        };
        if newly {
            self.diverged[i] = true;
        }
        (accepted.is_some(), newly)
    }

    /// Fold the pass into `(final values, histories, boundary-aware
    /// last-change sweep, accepted updates)`.
    fn finish(mut self) -> (Vec<T>, Histories<T>, u32, u64) {
        let mut packed = Histories::with_capacity(
            self.in_r.len(),
            self.prev.events() + self.updates as usize + 1,
        );
        for i in 0..self.in_r.len() {
            if self.in_r[i] {
                packed.push_slice(&self.hist[i]);
            } else {
                let p = self.matched[i].expect("boundary elements are matched");
                let h = self.prev.slice(p);
                packed.push_slice(h);
                if let Some(&(s, _)) = h.last() {
                    self.last_change = self.last_change.max(s);
                }
            }
        }
        (self.value, packed, self.last_change, self.updates)
    }
}

impl TestabilityAnalysis {
    /// Re-run the analysis for `dp`, a data path structurally close to
    /// `prev_dp` (for which `self` is the solution), re-evaluating only
    /// the region whose behavior diverges from the previous run.
    /// `extra_dirty` nodes of `dp` are force-included in that region;
    /// structural differences are detected automatically, so `&[]` is
    /// always sound.
    ///
    /// The result is bit-identical to `TestabilityAnalysis::analyze(dp)`
    /// — see the module docs for the argument and the property tests for
    /// the evidence. Falls back to a full analysis when `self` carries
    /// no update histories (a dense result) or does not belong to
    /// `prev_dp`.
    ///
    /// # Panics
    ///
    /// Panics if a node in `extra_dirty` is not a node of `dp`.
    #[must_use]
    pub fn reanalyze(
        &self,
        prev_dp: &DataPath,
        dp: &DataPath,
        extra_dirty: &[DpNodeId],
    ) -> TestabilityAnalysis {
        if !self.has_history()
            || self.out_ctrl.len() != prev_dp.num_nodes()
            || self.arc_obs.len() != prev_dp.num_arcs()
        {
            return TestabilityAnalysis::analyze(dp);
        }
        let n = dp.num_nodes();
        let m = dp.num_arcs();

        // Match nodes across the two paths by (class, allocation id) —
        // unique on both sides, same transfer function — keeping only
        // pairs that preserve relative order (lowering emits surviving
        // elements in a stable order, so in practice everything
        // order-matches). Order preservation makes Gauss–Seidel
        // visibility (`src < observer`) agree across old and new
        // indices, which both history lookups and prefix cuts rely on.
        let stride = slot_stride(prev_dp).max(slot_stride(dp));
        let prev_table = SlotTable::build(prev_dp, stride);
        let new_table = SlotTable::build(dp, stride);
        let mut matched_prev: Vec<Option<usize>> = vec![None; n];
        let mut last_matched = None;
        for (i, slot) in matched_prev.iter_mut().enumerate() {
            let kind = dp.node(DpNodeId::from_index(i)).kind();
            let Some((class, id)) = class_id(kind) else {
                continue;
            };
            if new_table.get(class, id) != Some(i) {
                continue; // ambiguous identity on the new side
            }
            let Some(p) = prev_table.get(class, id) else {
                continue;
            };
            if !same_kind(kind, prev_dp.node(DpNodeId::from_index(p)).kind()) {
                continue;
            }
            if last_matched.is_none_or(|l| p > l) {
                *slot = Some(p);
                last_matched = Some(p);
            }
        }

        // A node's in-arc signature is clean when every input position
        // carries the same port and a pairwise-matched source, *in
        // order* (the fixpoint's tie-breaking folds are
        // order-sensitive). Comparing through `matched_prev` instead of
        // cloned keys keeps the diff allocation-free.
        let in_sig_clean = |i: usize, p: usize| {
            let na = dp.in_arc_ids(DpNodeId::from_index(i));
            let pa = prev_dp.in_arc_ids(DpNodeId::from_index(p));
            na.len() == pa.len()
                && na.iter().zip(pa).all(|(&xa, &ya)| {
                    let (x, y) = (dp.arc(xa), prev_dp.arc(ya));
                    x.port() == y.port()
                        && matched_prev[x.from().index()] == Some(y.from().index())
                })
        };
        let out_sig_clean = |i: usize, p: usize| {
            let na = dp.out_arc_ids(DpNodeId::from_index(i));
            let pa = prev_dp.out_arc_ids(DpNodeId::from_index(p));
            na.len() == pa.len()
                && na.iter().zip(pa).all(|(&xa, &ya)| {
                    let (x, y) = (dp.arc(xa), prev_dp.arc(ya));
                    x.port() == y.port() && matched_prev[x.to().index()] == Some(y.to().index())
                })
        };

        let mut sig_dirty = vec![false; n];
        for i in 0..n {
            sig_dirty[i] = match matched_prev[i] {
                None => true,
                Some(p) => !in_sig_clean(i, p),
            };
        }
        let mut extra = vec![false; n];
        for d in extra_dirty {
            assert!(d.index() < n, "extra_dirty node {d} is not in dp");
            extra[d.index()] = true;
        }

        // ---- Forward pass: controllability over nodes. ----
        let prev_ctrl = &self.ctrl_hist;
        let mut rc = Replay::new(n, prev_ctrl, &matched_prev, &self.out_ctrl, Controllability::none());
        for i in 0..n {
            if sig_dirty[i] || extra[i] {
                rc.join_initial(i, ctrl_seed(dp.node(DpNodeId::from_index(i)).kind()));
            }
        }

        // Schedule the initial `R`: sweep 1 for every evaluable member
        // (as a full run would), one wake-up per boundary-input event,
        // and one per *own* previous event so silenced events are
        // detected.
        let mut wl = Worklist::new(MAX_SWEEPS as u32);
        for i in 0..n {
            if !rc.in_r[i] || !forward_evaluable(dp.node(DpNodeId::from_index(i)).kind()) {
                continue;
            }
            wl.push(1, i);
            for &(s, _) in rc.expected(i) {
                wl.push(s, i);
            }
            for &aid in dp.in_arc_ids(DpNodeId::from_index(i)) {
                let j = dp.arc(aid).from().index();
                if !rc.in_r[j] {
                    let p = matched_prev[j].expect("boundary nodes are matched");
                    for &(s, _) in prev_ctrl.slice(p) {
                        if s >= 1 {
                            wl.push_after(s, j, i);
                        }
                    }
                }
            }
        }
        while let Some((sweep, i)) = wl.pop() {
            let id = DpNodeId::from_index(i);
            let cand = ctrl_candidate(dp, id, &|pn: DpNodeId| {
                let j = pn.index();
                if rc.in_r[j] {
                    rc.value[j]
                } else {
                    let p = matched_prev[j].expect("boundary nodes are matched");
                    hist_at(prev_ctrl.slice(p), sweep, j, i)
                }
            });
            let Some(cand) = cand else { continue };
            let accepted = cand.better_than(rc.value[i]).then_some(cand);
            let (acc, newly) = rc.reconcile(i, sweep, accepted);
            if !acc && !newly {
                continue;
            }
            // On divergence, the element's remaining old events are
            // dead: successors must be re-checked at every position
            // those events would have driven.
            let dead: Vec<u32> = if newly {
                rc.expected(i).iter().map(|&(s, _)| s).collect()
            } else {
                Vec::new()
            };
            for &out in dp.out_arc_ids(id) {
                let s_node = dp.arc(out).to();
                let x = s_node.index();
                if !forward_evaluable(dp.node(s_node).kind()) {
                    continue;
                }
                if rc.in_r[x] {
                    wl.push_after(sweep, i, x);
                } else if rc.diverged[i] {
                    // `newly`, or an accept by an element that started
                    // diverged (unmatched members never had a chance to
                    // activate their dependents before their first
                    // accepted value became visible).
                    rc.activate(x, sweep, i);
                    // Catch-up evaluations: wakes from accepts popped
                    // before this activation were dropped while `x` was
                    // boundary; their targets can only be this sweep or
                    // the next.
                    if x > i {
                        wl.push(sweep, x);
                    }
                    wl.push(sweep + 1, x);
                    for &aid in dp.in_arc_ids(s_node) {
                        let j = dp.arc(aid).from().index();
                        if !rc.in_r[j] {
                            let p = matched_prev[j].expect("boundary nodes are matched");
                            for &(s, _) in prev_ctrl.slice(p) {
                                if s >= 1 {
                                    push_future(&mut wl, s, j, x, (sweep, i));
                                }
                            }
                        }
                    }
                }
                for &s in &dead {
                    push_future(&mut wl, s, i, x, (sweep, i));
                }
            }
        }
        let in_r_ctrl = rc.in_r.clone();
        let (out_ctrl, ctrl_hist, last_change, ctrl_updates) = rc.finish();
        let sweeps_used = (last_change as usize + 1).min(MAX_SWEEPS);

        // Nodes whose *final* controllability differs from the previous
        // solution (exactly) invalidate the observability of their
        // sinks' in-arcs: the backward pass reads final controllability.
        // Elements outside `R` are final-equal by construction.
        let ctrl_changed: Vec<bool> = (0..n)
            .map(|i| match matched_prev[i] {
                None => true,
                Some(p) => in_r_ctrl[i] && out_ctrl[i] != self.out_ctrl[p],
            })
            .collect();

        // Match arcs through the node matching: an arc matches when both
        // endpoints matched and the previous path has an arc with the
        // same port between the matched endpoints (unique by
        // construction: the builder dedupes parallel arcs).
        // Order-preserving, like the node matching.
        let mut arc_matched_prev: Vec<Option<usize>> = vec![None; m];
        let mut last_arc = None;
        for (i, a) in dp.arcs().iter().enumerate() {
            let (Some(pf), Some(pt)) = (
                matched_prev[a.from().index()],
                matched_prev[a.to().index()],
            ) else {
                continue;
            };
            let hit = prev_dp
                .in_arc_ids(DpNodeId::from_index(pt))
                .iter()
                .map(|&b| prev_dp.arc(b))
                .find(|b| b.from().index() == pf && b.port() == a.port())
                .map(|b| b.id().index());
            if let Some(p) = hit {
                if last_arc.is_none_or(|l| p > l) {
                    arc_matched_prev[i] = Some(p);
                    last_arc = Some(p);
                }
            }
        }

        // A sink is observability-dirty when its identity, wiring, or
        // any input's final controllability changed.
        let sink_dirty: Vec<bool> = (0..n)
            .map(|v| {
                let id = DpNodeId::from_index(v);
                match matched_prev[v] {
                    None => true,
                    Some(p) => {
                        extra[v]
                            || sig_dirty[v]
                            || !out_sig_clean(v, p)
                            || dp
                                .in_arc_ids(id)
                                .iter()
                                .any(|&a| ctrl_changed[dp.arc(a).from().index()])
                    }
                }
            })
            .collect();

        // ---- Backward pass: observability over arcs. ----
        let prev_obs = &self.obs_hist;
        let mut ro = Replay::new(m, prev_obs, &arc_matched_prev, &self.arc_obs, Observability::none());
        for i in 0..m {
            if arc_matched_prev[i].is_none() || sink_dirty[dp.arc(DpArcId::from_index(i)).to().index()]
            {
                ro.join_initial(i, Observability::none());
            }
        }
        let mut wl = Worklist::new(MAX_SWEEPS as u32);
        for i in 0..m {
            if !ro.in_r[i] {
                continue;
            }
            wl.push(1, i);
            for &(s, _) in ro.expected(i) {
                wl.push(s, i);
            }
            for &b in dp.out_arc_ids(dp.arc(DpArcId::from_index(i)).to()) {
                let j = b.index();
                if !ro.in_r[j] {
                    let p = arc_matched_prev[j].expect("boundary arcs are matched");
                    for &(s, _) in prev_obs.slice(p) {
                        if s >= 1 {
                            wl.push_after(s, j, i);
                        }
                    }
                }
            }
        }
        let ctrl_final = |p: DpNodeId| out_ctrl[p.index()];
        while let Some((sweep, i)) = wl.pop() {
            let arc = dp.arc(DpArcId::from_index(i));
            let cand = obs_candidate(dp, arc, &ctrl_final, &|a: DpArcId| {
                let j = a.index();
                if ro.in_r[j] {
                    ro.value[j]
                } else {
                    let p = arc_matched_prev[j].expect("boundary arcs are matched");
                    hist_at(prev_obs.slice(p), sweep, j, i)
                }
            });
            let accepted = cand.better_than(ro.value[i]).then_some(cand);
            let (acc, newly) = ro.reconcile(i, sweep, accepted);
            if !acc && !newly {
                continue;
            }
            let dead: Vec<u32> = if newly {
                ro.expected(i).iter().map(|&(s, _)| s).collect()
            } else {
                Vec::new()
            };
            for &dep in dp.in_arc_ids(arc.from()) {
                let x = dep.index();
                if ro.in_r[x] {
                    wl.push_after(sweep, i, x);
                } else if ro.diverged[i] {
                    // see the forward pass: covers `newly` and accepts
                    // by initially-diverged (unmatched) members
                    ro.activate(x, sweep, i);
                    if x > i {
                        wl.push(sweep, x);
                    }
                    wl.push(sweep + 1, x);
                    for &b in dp.out_arc_ids(dp.arc(DpArcId::from_index(x)).to()) {
                        let j = b.index();
                        if !ro.in_r[j] {
                            let p = arc_matched_prev[j].expect("boundary arcs are matched");
                            for &(s, _) in prev_obs.slice(p) {
                                if s >= 1 {
                                    push_future(&mut wl, s, j, x, (sweep, i));
                                }
                            }
                        }
                    }
                }
                for &s in &dead {
                    push_future(&mut wl, s, i, x, (sweep, i));
                }
            }
        }
        let (arc_obs, obs_hist, _, obs_updates) = ro.finish();

        TestabilityAnalysis {
            out_ctrl,
            arc_obs,
            sweeps_used,
            updates: ctrl_updates + obs_updates,
            ctrl_hist,
            obs_hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_alloc::Allocation;
    use hlts_dfg::{Dfg, DfgBuilder, OpKind};
    use hlts_etpn::Etpn;
    use hlts_sched::{list_schedule, ListPriority};

    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new("diamond");
        let a = b.input("a");
        let c = b.input("c");
        let t0 = b.op("N0", OpKind::Add, &[a, c], "t0").unwrap();
        let t1 = b.op("N1", OpKind::Mul, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Sub, &[t0, t1], "t2").unwrap();
        b.mark_output(t2);
        b.finish().unwrap()
    }

    fn lower(dfg: &Dfg, alloc: &Allocation) -> Etpn {
        let s = list_schedule(dfg, &[], ListPriority::CriticalPath).unwrap();
        Etpn::from_parts(dfg, &s, alloc).unwrap()
    }

    #[test]
    fn unchanged_path_reanalyzes_to_itself_with_no_updates() {
        let d = diamond();
        let alloc = Allocation::one_to_one(&d);
        let e = lower(&d, &alloc);
        let dp = e.data_path();
        let prev = TestabilityAnalysis::analyze(dp);
        let re = prev.reanalyze(dp, dp, &[]);
        assert!(re == prev);
        assert_eq!(re.updates_propagated(), 0, "empty region replays nothing");
        assert_eq!(re.sweeps_used(), prev.sweeps_used());
    }

    fn chain(len: usize) -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let a = b.input("a");
        let c = b.input("c");
        let mut cur = a;
        for i in 0..len {
            cur = b
                .op(&format!("N{i}"), OpKind::Add, &[cur, c], &format!("t{i}"))
                .unwrap();
        }
        b.mark_output(cur);
        b.finish().unwrap()
    }

    #[test]
    fn reanalysis_after_merge_matches_dense() {
        let d = chain(3);
        let base_alloc = Allocation::one_to_one(&d);
        let base = lower(&d, &base_alloc);
        let prev = TestabilityAnalysis::analyze(base.data_path());

        // Merge two lifetime-disjoint registers and re-lower: a local
        // structural change.
        let mut alloc = base_alloc.clone();
        let r0 = alloc.register_of(d.value_by_name("t0").unwrap()).unwrap();
        let r2 = alloc.register_of(d.value_by_name("t2").unwrap()).unwrap();
        alloc.merge_registers(r0, r2).unwrap();
        let merged = lower(&d, &alloc);
        let dp = merged.data_path();

        let re = prev.reanalyze(base.data_path(), dp, &[]);
        let full = TestabilityAnalysis::analyze(dp);
        let dense = TestabilityAnalysis::analyze_dense(dp);
        assert!(re == full, "incremental must equal worklist");
        assert!(re == dense, "incremental must equal dense");
        assert_eq!(re.sweeps_used(), dense.sweeps_used());
        assert!(
            re.updates_propagated() <= full.updates_propagated(),
            "replay must not do more work than a full run"
        );
    }

    #[test]
    fn dense_previous_solution_falls_back_to_full_analysis() {
        let d = diamond();
        let alloc = Allocation::one_to_one(&d);
        let e = lower(&d, &alloc);
        let dp = e.data_path();
        let dense = TestabilityAnalysis::analyze_dense(dp);
        let re = dense.reanalyze(dp, dp, &[]);
        assert!(re == dense);
        assert!(re.has_history(), "fallback produces a replayable result");
    }

    #[test]
    fn extra_dirty_forces_reevaluation_but_not_a_different_result() {
        let d = diamond();
        let alloc = Allocation::one_to_one(&d);
        let e = lower(&d, &alloc);
        let dp = e.data_path();
        let prev = TestabilityAnalysis::analyze(dp);
        let all: Vec<_> = dp.nodes().iter().map(|n| n.id()).collect();
        let re = prev.reanalyze(dp, dp, &all);
        assert!(re == prev, "a fully dirty replay is just a full run");
        assert_eq!(re.updates_propagated(), prev.updates_propagated());
    }

    #[test]
    fn consistent_replay_never_floods_past_the_divergence_frontier() {
        // Re-analyzing an identical path with one extra-dirty node must
        // re-evaluate that node (and nothing else): its stream is
        // consistent with its old history, so no successor activates.
        let d = chain(4);
        let alloc = Allocation::one_to_one(&d);
        let e = lower(&d, &alloc);
        let dp = e.data_path();
        let prev = TestabilityAnalysis::analyze(dp);
        let r0 = dp
            .node_of_register(alloc.register_of(d.value_by_name("t0").unwrap()).unwrap())
            .unwrap();
        let re = prev.reanalyze(dp, dp, &[r0]);
        assert!(re == prev);
        let full_updates = prev.updates_propagated();
        assert!(
            re.updates_propagated() < full_updates,
            "one consistent dirty node must not replay the whole graph \
             ({} vs {full_updates} updates)",
            re.updates_propagated()
        );
    }
}
