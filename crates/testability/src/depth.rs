//! Register-to-register sequential-depth analysis.
//!
//! The *sequential depth* from register A to register B is the minimum
//! number of register-transfer stages a value needs to travel from A to
//! B through the data path (one module traversal = one stage). Lee et
//! al.'s allocation rule — the paper's **SR1** — is to *reduce the
//! sequential depth from a controllable register to an observable
//! register*; the paper's rescheduling strategy **SR2** orders merged
//! operations to support SR1. The integrated synthesizer compares
//! candidate orders with [`total_co_depth`].

use std::collections::VecDeque;

use hlts_etpn::{DataPath, DpNodeId, DpNodeKind};

use crate::TestabilityAnalysis;

/// Register adjacency: `adj[i]` lists the registers reachable from
/// register `register_nodes[i]` through exactly one module traversal
/// (combinational stage). Indices refer to `dp.register_nodes()` order.
#[must_use]
pub fn register_adjacency(dp: &DataPath) -> (Vec<DpNodeId>, Vec<Vec<usize>>) {
    let regs = dp.register_nodes();
    let pos = |n: DpNodeId| regs.iter().position(|&r| r == n);
    let mut adj = vec![Vec::new(); regs.len()];
    for (i, &r) in regs.iter().enumerate() {
        // r -> module -> register, or r -> register (loop-carried copies).
        // Walking out-arcs may visit a successor once per arc; the
        // `contains` dedup keeps the adjacency a set either way.
        for &arc in dp.out_arc_ids(r) {
            let succ = dp.arc(arc).to();
            match dp.node(succ).kind() {
                DpNodeKind::Module { .. } => {
                    for &arc2 in dp.out_arc_ids(succ) {
                        let succ2 = dp.arc(arc2).to();
                        if let Some(j) = pos(succ2) {
                            if !adj[i].contains(&j) {
                                adj[i].push(j);
                            }
                        }
                    }
                }
                DpNodeKind::Register(_) => {
                    if let Some(j) = pos(succ) {
                        if !adj[i].contains(&j) {
                            adj[i].push(j);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    (regs, adj)
}

/// Minimum sequential depth (register-transfer stages) from register
/// `from` to register `to`, or `None` when unreachable.
///
/// Depth 0 means `from == to`; depth 1 means one module traversal.
#[must_use]
pub fn sequential_depth(dp: &DataPath, from: DpNodeId, to: DpNodeId) -> Option<usize> {
    let (regs, adj) = register_adjacency(dp);
    let s = regs.iter().position(|&r| r == from)?;
    let t = regs.iter().position(|&r| r == to)?;
    if s == t {
        return Some(0);
    }
    let mut dist = vec![usize::MAX; regs.len()];
    dist[s] = 0;
    let mut q = VecDeque::from([s]);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                if v == t {
                    return Some(dist[v]);
                }
                q.push_back(v);
            }
        }
    }
    None
}

/// The SR1 objective over a whole data path: for every register, the
/// depth of the cheapest *controllable-register →  this → observable-
/// register* route, summed. Lower is better. Unreachable routes incur a
/// fixed penalty so that designs with dead-end registers rank worse.
///
/// Controllable registers are those whose (analysis-scalarized)
/// controllability is within 75% of the data path's best; observable
/// registers likewise for observability. This follows the paper's use
/// of the analysis results to identify "a controllable register" and
/// "an observable register" rather than fixed thresholds.
#[must_use]
pub fn total_co_depth(dp: &DataPath, analysis: &TestabilityAnalysis) -> f64 {
    let (regs, adj) = register_adjacency(dp);
    if regs.is_empty() {
        return 0.0;
    }
    let ctrl: Vec<f64> = regs
        .iter()
        .map(|&r| analysis.node_controllability(dp, r).scalar())
        .collect();
    let obs: Vec<f64> = regs
        .iter()
        .map(|&r| analysis.node_observability(dp, r).scalar())
        .collect();
    let cmax = ctrl.iter().copied().fold(0.0, f64::max);
    let omax = obs.iter().copied().fold(0.0, f64::max);
    let controllable: Vec<usize> = (0..regs.len())
        .filter(|&i| ctrl[i] >= 0.75 * cmax && ctrl[i] > 0.0)
        .collect();
    let observable: Vec<bool> = (0..regs.len())
        .map(|i| obs[i] >= 0.75 * omax && obs[i] > 0.0)
        .collect();

    // Multi-source BFS from all controllable registers.
    let mut dist = vec![usize::MAX; regs.len()];
    let mut q = VecDeque::new();
    for &i in &controllable {
        dist[i] = 0;
        q.push_back(i);
    }
    while let Some(u) = q.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    // Distance from each register onward to an observable register.
    let mut dist_to_obs = vec![usize::MAX; regs.len()];
    let mut q = VecDeque::new();
    for i in 0..regs.len() {
        if observable[i] {
            dist_to_obs[i] = 0;
            q.push_back(i);
        }
    }
    // reverse-edge BFS
    let mut radj = vec![Vec::new(); regs.len()];
    for (u, vs) in adj.iter().enumerate() {
        for &v in vs {
            radj[v].push(u);
        }
    }
    while let Some(u) = q.pop_front() {
        for &v in &radj[u] {
            if dist_to_obs[v] == usize::MAX {
                dist_to_obs[v] = dist_to_obs[u] + 1;
                q.push_back(v);
            }
        }
    }

    let penalty = (2 * regs.len()) as f64;
    (0..regs.len())
        .map(|i| {
            let through = match (dist[i], dist_to_obs[i]) {
                (usize::MAX, _) | (_, usize::MAX) => return penalty,
                (a, b) => a + b,
            };
            through as f64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_alloc::Allocation;
    use hlts_dfg::{Dfg, DfgBuilder, OpKind};
    use hlts_etpn::Etpn;
    use hlts_sched::{list_schedule, ListPriority};

    fn chain(len: usize) -> (Dfg, Etpn, Allocation) {
        let mut b = DfgBuilder::new("chain");
        let a = b.input("a");
        let c = b.input("c");
        let mut cur = a;
        for i in 0..len {
            cur = b
                .op(&format!("N{i}"), OpKind::Add, &[cur, c], &format!("t{i}"))
                .unwrap();
        }
        b.mark_output(cur);
        let d = b.finish().unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        let alloc = Allocation::one_to_one(&d);
        let e = Etpn::from_parts(&d, &s, &alloc).unwrap();
        (d, e, alloc)
    }

    #[test]
    fn depth_along_chain() {
        let (d, e, alloc) = chain(3);
        let dp = e.data_path();
        let reg = |name: &str| {
            dp.node_of_register(alloc.register_of(d.value_by_name(name).unwrap()).unwrap())
                .unwrap()
        };
        assert_eq!(sequential_depth(dp, reg("a"), reg("t0")), Some(1));
        assert_eq!(sequential_depth(dp, reg("a"), reg("t1")), Some(2));
        assert_eq!(sequential_depth(dp, reg("a"), reg("t2")), Some(3));
        assert_eq!(sequential_depth(dp, reg("a"), reg("a")), Some(0));
        // no backward path
        assert_eq!(sequential_depth(dp, reg("t2"), reg("a")), None);
    }

    #[test]
    fn register_sharing_shortens_depth() {
        // the Figure 1 effect: sharing registers across chain positions
        // shortens controllable-to-observable depth
        let (d, e, alloc) = chain(3);
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        let base = total_co_depth(dp, &ta);

        // merge a's register with t1's (disjoint lifetimes: a dies in
        // step 0... a is used only by N0 at step 0; t1 born step 2) —
        // the shared register is then 1 hop from the output instead of 3.
        let (d2, _, _) = chain(3);
        let s2 = list_schedule(&d2, &[], ListPriority::CriticalPath).unwrap();
        let mut alloc2 = Allocation::one_to_one(&d2);
        let va = d2.value_by_name("a").unwrap();
        let vt1 = d2.value_by_name("t1").unwrap();
        alloc2
            .merge_registers(
                alloc2.register_of(va).unwrap(),
                alloc2.register_of(vt1).unwrap(),
            )
            .unwrap();
        let e2 = Etpn::from_parts(&d2, &s2, &alloc2).unwrap();
        let dp2 = e2.data_path();
        let ta2 = TestabilityAnalysis::analyze(dp2);
        let merged = total_co_depth(dp2, &ta2);
        assert!(
            merged < base,
            "sharing should shorten total depth: {merged} vs {base}"
        );
        let _ = (d, alloc);
    }

    #[test]
    fn adjacency_includes_register_copy_arcs() {
        let mut b = DfgBuilder::new("loopy");
        let x = b.input("x");
        let dx = b.input("dx");
        let x1 = b.op("N1", OpKind::Add, &[x, dx], "x1").unwrap();
        b.mark_output(x1);
        b.loop_carried(x1, x);
        let d = b.finish().unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        let alloc = Allocation::one_to_one(&d);
        let e = Etpn::from_parts(&d, &s, &alloc).unwrap();
        let dp = e.data_path();
        let rx1 = dp
            .node_of_register(alloc.register_of(d.value_by_name("x1").unwrap()).unwrap())
            .unwrap();
        let rx = dp.node_of_register(alloc.register_of(x).unwrap()).unwrap();
        // x1 -> x copy arc gives depth 1
        assert_eq!(sequential_depth(dp, rx1, rx), Some(1));
    }

    #[test]
    fn total_depth_penalizes_unreachable() {
        // dead-end: a value never observed (no PO) — build a graph whose
        // intermediate feeds only a condition
        let mut b = DfgBuilder::new("dead");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op("N1", OpKind::Add, &[a, c], "t").unwrap();
        let _f = b.op("N2", OpKind::Lt, &[t, c], "f").unwrap();
        let d = b.finish().unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        let alloc = Allocation::one_to_one(&d);
        let e = Etpn::from_parts(&d, &s, &alloc).unwrap();
        let dp = e.data_path();
        let ta = TestabilityAnalysis::analyze(dp);
        let v = total_co_depth(dp, &ta);
        assert!(v.is_finite());
        assert!(v > 0.0);
    }
}
