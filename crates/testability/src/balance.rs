//! The controllability/observability balance objective (paper §3).
//!
//! "The basic idea is to fold nodes with good controllability and bad
//! observability to nodes with good observability and bad
//! controllability. ... the new node will inherit the good
//! controllability from one of the old nodes and the good observability
//! from the other."

use hlts_etpn::{DataPath, DpNodeId};

use crate::analysis::TestabilityAnalysis;

/// A node's scalarized controllability/observability profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeProfile {
    /// Scalarized controllability (0 = uncontrollable, ~1 = free).
    pub c: f64,
    /// Scalarized observability (0 = unobservable, ~1 = free).
    pub o: f64,
}

impl NodeProfile {
    /// Compute the profile of `node`.
    #[must_use]
    pub fn of(analysis: &TestabilityAnalysis, dp: &DataPath, node: DpNodeId) -> Self {
        NodeProfile {
            c: analysis.node_controllability(dp, node).scalar(),
            o: analysis.node_observability(dp, node).scalar(),
        }
    }

    /// The node's imbalance: positive when controllability dominates
    /// (easy to set, hard to see), negative when observability dominates.
    #[must_use]
    pub fn imbalance(self) -> f64 {
        self.c - self.o
    }
}

/// The balance score of merging nodes `a` and `b`: how complementary
/// their C/O profiles are. High when one node is
/// controllability-dominant and the other observability-dominant —
/// exactly the pairs the paper's allocation principle folds together.
/// Symmetric in its arguments; can be negative for like-with-like pairs
/// (both C-dominant or both O-dominant), which conventional
/// connectivity-driven allocation tends to produce.
///
/// # Example
///
/// Pairs with opposite imbalance score higher:
///
/// ```
/// use hlts_testability::NodeProfile;
/// use hlts_testability::balance_score_profiles;
///
/// let c_dominant = NodeProfile { c: 0.9, o: 0.1 };
/// let o_dominant = NodeProfile { c: 0.1, o: 0.9 };
/// let both_c = NodeProfile { c: 0.8, o: 0.2 };
/// assert!(balance_score_profiles(c_dominant, o_dominant)
///     > balance_score_profiles(c_dominant, both_c));
/// ```
#[must_use]
pub fn balance_score(
    analysis: &TestabilityAnalysis,
    dp: &DataPath,
    a: DpNodeId,
    b: DpNodeId,
) -> f64 {
    balance_score_profiles(
        NodeProfile::of(analysis, dp, a),
        NodeProfile::of(analysis, dp, b),
    )
}

/// [`balance_score`] on precomputed profiles.
#[must_use]
pub fn balance_score_profiles(a: NodeProfile, b: NodeProfile) -> f64 {
    // Complementarity: product of opposite imbalances, symmetrized, plus
    // a small term rewarding overall testability mass so well-testable
    // pairs win ties.
    let complement = -(a.imbalance() * b.imbalance());
    let mass = 0.1 * (a.c.max(b.c) + a.o.max(b.o));
    complement + mass
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complementary_pairs_beat_similar_pairs() {
        let cd = NodeProfile { c: 0.9, o: 0.2 };
        let od = NodeProfile { c: 0.2, o: 0.9 };
        let cd2 = NodeProfile { c: 0.8, o: 0.1 };
        assert!(balance_score_profiles(cd, od) > balance_score_profiles(cd, cd2));
        assert!(balance_score_profiles(cd, od) > 0.0);
        assert!(balance_score_profiles(cd, cd2) < balance_score_profiles(od, cd));
    }

    #[test]
    fn score_is_symmetric() {
        let a = NodeProfile { c: 0.7, o: 0.3 };
        let b = NodeProfile { c: 0.2, o: 0.8 };
        assert!((balance_score_profiles(a, b) - balance_score_profiles(b, a)).abs() < 1e-12);
    }

    #[test]
    fn imbalance_sign() {
        assert!(NodeProfile { c: 0.9, o: 0.1 }.imbalance() > 0.0);
        assert!(NodeProfile { c: 0.1, o: 0.9 }.imbalance() < 0.0);
    }

    #[test]
    fn balanced_nodes_prefer_testable_partner() {
        let balanced = NodeProfile { c: 0.5, o: 0.5 };
        let good = NodeProfile { c: 0.9, o: 0.9 };
        let bad = NodeProfile { c: 0.1, o: 0.1 };
        assert!(balance_score_profiles(balanced, good) > balance_score_profiles(balanced, bad));
    }
}
