//! Property-based tests for the testability analysis: the CC/SC/CO/SO
//! fixpoint must stay within its domains, converge, and respond to
//! structure (deeper registers are never easier to control than their
//! sources' best case).

use hlts_alloc::Allocation;
use hlts_dfg::{Dfg, DfgBuilder, OpKind};
use hlts_etpn::Etpn;
use hlts_sched::{list_schedule, ListPriority};
use hlts_testability::{balance_score_profiles, NodeProfile, TestabilityAnalysis};
use proptest::prelude::*;

fn build_dfg(spec: &[(u8, u8, u8)]) -> Dfg {
    let mut b = DfgBuilder::new("prop");
    let mut vals = vec![b.input("i0"), b.input("i1")];
    for (n, &(k, x, y)) in spec.iter().enumerate() {
        let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Xor];
        let kind = kinds[k as usize % kinds.len()];
        let a = vals[x as usize % vals.len()];
        let c = vals[y as usize % vals.len()];
        let out = b
            .op(&format!("N{n}"), kind, &[a, c], &format!("v{n}"))
            .expect("fresh name");
        vals.push(out);
    }
    let last = *vals.last().expect("nonempty");
    b.mark_output(last);
    b.finish().expect("well-formed")
}

fn spec_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12)
}

fn analyzed(spec: &[(u8, u8, u8)]) -> (Dfg, Etpn, TestabilityAnalysis) {
    let d = build_dfg(spec);
    let s = list_schedule(&d, &[], ListPriority::CriticalPath).expect("schedulable");
    let a = Allocation::one_to_one(&d);
    let e = Etpn::from_parts(&d, &s, &a).expect("lowerable");
    let ta = TestabilityAnalysis::analyze(e.data_path());
    (d, e, ta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CC/CO stay in [0, 1]; scalarizations stay in [0, 1]; the fixpoint
    /// converges well inside its sweep cap.
    #[test]
    fn measures_stay_in_domain(spec in spec_strategy()) {
        let (_d, e, ta) = analyzed(&spec);
        let dp = e.data_path();
        prop_assert!(ta.sweeps_used() < 64);
        for node in dp.nodes() {
            let c = ta.output_controllability(node.id());
            prop_assert!((0.0..=1.0).contains(&c.cc), "cc = {}", c.cc);
            prop_assert!(c.sc >= 0.0);
            let p = NodeProfile::of(&ta, dp, node.id());
            prop_assert!((0.0..=1.0).contains(&p.c));
            prop_assert!((0.0..=1.0).contains(&p.o));
        }
    }

    /// Primary inputs are perfectly controllable; every register fed
    /// (transitively) from inputs has positive controllability.
    #[test]
    fn inputs_dominate_controllability(spec in spec_strategy()) {
        let (_d, e, ta) = analyzed(&spec);
        let dp = e.data_path();
        for node in dp.nodes() {
            if node.kind().is_primary_input() {
                let c = ta.output_controllability(node.id());
                prop_assert_eq!(c.cc, 1.0);
                prop_assert_eq!(c.sc, 0.0);
            }
            if node.kind().is_register() {
                let c = ta.output_controllability(node.id());
                prop_assert!(c.cc > 0.0, "unreachable register {}", node.label());
                // a register costs at least one time frame
                prop_assert!(c.sc >= 1.0);
            }
        }
    }

    /// A register's output controllability never exceeds the best of its
    /// sources (propagation only attenuates).
    #[test]
    fn registers_never_amplify_controllability(spec in spec_strategy()) {
        let (_d, e, ta) = analyzed(&spec);
        let dp = e.data_path();
        for rn in dp.register_nodes() {
            let out = ta.output_controllability(rn);
            let best_src = dp
                .in_arcs(rn)
                .iter()
                .map(|arc| ta.output_controllability(arc.from()).cc)
                .fold(0.0f64, f64::max);
            prop_assert!(out.cc <= best_src + 1e-9);
        }
    }

    /// The balance score is symmetric over random profiles and maximal
    /// pairs are complementary.
    #[test]
    fn balance_score_is_symmetric(
        c1 in 0.0f64..=1.0, o1 in 0.0f64..=1.0,
        c2 in 0.0f64..=1.0, o2 in 0.0f64..=1.0,
    ) {
        let a = NodeProfile { c: c1, o: o1 };
        let b = NodeProfile { c: c2, o: o2 };
        let ab = balance_score_profiles(a, b);
        let ba = balance_score_profiles(b, a);
        prop_assert!((ab - ba).abs() < 1e-12);
    }
}
