//! Property-based tests for the testability analysis: the CC/SC/CO/SO
//! fixpoint must stay within its domains, converge, and respond to
//! structure (deeper registers are never easier to control than their
//! sources' best case).

use hlts_alloc::Allocation;
use hlts_dfg::{Dfg, DfgBuilder, OpKind};
use hlts_etpn::Etpn;
use hlts_sched::{list_schedule, Lifetimes, ListPriority};
use hlts_testability::{balance_score_profiles, NodeProfile, TestabilityAnalysis};
use proptest::prelude::*;

fn build_dfg(spec: &[(u8, u8, u8)]) -> Dfg {
    let mut b = DfgBuilder::new("prop");
    let mut vals = vec![b.input("i0"), b.input("i1")];
    for (n, &(k, x, y)) in spec.iter().enumerate() {
        let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Xor];
        let kind = kinds[k as usize % kinds.len()];
        let a = vals[x as usize % vals.len()];
        let c = vals[y as usize % vals.len()];
        let out = b
            .op(&format!("N{n}"), kind, &[a, c], &format!("v{n}"))
            .expect("fresh name");
        vals.push(out);
    }
    let last = *vals.last().expect("nonempty");
    b.mark_output(last);
    b.finish().expect("well-formed")
}

fn spec_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12)
}

fn analyzed(spec: &[(u8, u8, u8)]) -> (Dfg, Etpn, TestabilityAnalysis) {
    let d = build_dfg(spec);
    let s = list_schedule(&d, &[], ListPriority::CriticalPath).expect("schedulable");
    let a = Allocation::one_to_one(&d);
    let e = Etpn::from_parts(&d, &s, &a).expect("lowerable");
    let ta = TestabilityAnalysis::analyze(e.data_path());
    (d, e, ta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CC/CO stay in [0, 1]; scalarizations stay in [0, 1]; the fixpoint
    /// converges well inside its sweep cap.
    #[test]
    fn measures_stay_in_domain(spec in spec_strategy()) {
        let (_d, e, ta) = analyzed(&spec);
        let dp = e.data_path();
        prop_assert!(ta.sweeps_used() < 64);
        for node in dp.nodes() {
            let c = ta.output_controllability(node.id());
            prop_assert!((0.0..=1.0).contains(&c.cc), "cc = {}", c.cc);
            prop_assert!(c.sc >= 0.0);
            let p = NodeProfile::of(&ta, dp, node.id());
            prop_assert!((0.0..=1.0).contains(&p.c));
            prop_assert!((0.0..=1.0).contains(&p.o));
        }
    }

    /// Primary inputs are perfectly controllable; every register fed
    /// (transitively) from inputs has positive controllability.
    #[test]
    fn inputs_dominate_controllability(spec in spec_strategy()) {
        let (_d, e, ta) = analyzed(&spec);
        let dp = e.data_path();
        for node in dp.nodes() {
            if node.kind().is_primary_input() {
                let c = ta.output_controllability(node.id());
                prop_assert_eq!(c.cc, 1.0);
                prop_assert_eq!(c.sc, 0.0);
            }
            if node.kind().is_register() {
                let c = ta.output_controllability(node.id());
                prop_assert!(c.cc > 0.0, "unreachable register {}", node.label());
                // a register costs at least one time frame
                prop_assert!(c.sc >= 1.0);
            }
        }
    }

    /// A register's output controllability never exceeds the best of its
    /// sources (propagation only attenuates).
    #[test]
    fn registers_never_amplify_controllability(spec in spec_strategy()) {
        let (_d, e, ta) = analyzed(&spec);
        let dp = e.data_path();
        for rn in dp.register_nodes() {
            let out = ta.output_controllability(rn);
            let best_src = dp
                .in_arc_ids(rn)
                .iter()
                .map(|&a| ta.output_controllability(dp.arc(a).from()).cc)
                .fold(0.0f64, f64::max);
            prop_assert!(out.cc <= best_src + 1e-9);
        }
    }

    /// The worklist solver is bit-identical to the dense Gauss–Seidel
    /// reference: every controllability and observability value matches
    /// exactly (`to_bits`), and so do the diagnostics.
    #[test]
    fn worklist_is_bit_identical_to_dense(spec in spec_strategy()) {
        let (_d, e, ta) = analyzed(&spec);
        let dp = e.data_path();
        let dense = TestabilityAnalysis::analyze_dense(dp);
        prop_assert!(ta == dense);
        prop_assert_eq!(ta.sweeps_used(), dense.sweeps_used());
        prop_assert_eq!(ta.updates_propagated(), dense.updates_propagated());
        for node in dp.nodes() {
            let a = ta.output_controllability(node.id());
            let b = dense.output_controllability(node.id());
            prop_assert_eq!(a.cc.to_bits(), b.cc.to_bits(), "cc of {}", node.label());
            prop_assert_eq!(a.sc.to_bits(), b.sc.to_bits(), "sc of {}", node.label());
        }
        for arc in dp.arcs() {
            let a = ta.arc_observability(arc.id());
            let b = dense.arc_observability(arc.id());
            prop_assert_eq!(a.co.to_bits(), b.co.to_bits(), "co of {}", arc.id());
            prop_assert_eq!(a.so.to_bits(), b.so.to_bits(), "so of {}", arc.id());
        }
    }

    /// Incremental re-analysis stays bit-identical to a dense run at
    /// every state along a random merge sequence, with each incremental
    /// result seeding the next step (histories must chain).
    #[test]
    fn reanalysis_tracks_random_merge_sequences(
        spec in spec_strategy(),
        merges in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<bool>()), 1..6),
    ) {
        let d = build_dfg(&spec);
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).expect("schedulable");
        let lt = Lifetimes::compute(&d, &s);
        let mut alloc = Allocation::one_to_one(&d);
        let mut prev_e = Etpn::from_parts(&d, &s, &alloc).expect("lowerable");
        let mut prev_ta = TestabilityAnalysis::analyze(prev_e.data_path());
        for (x, y, on_registers) in merges {
            let mut trial = alloc.clone();
            let merged = if on_registers {
                let regs: Vec<_> = trial.registers().map(|r| r.id()).collect();
                if regs.len() < 2 { continue; }
                let a = regs[x as usize % regs.len()];
                let b = regs[y as usize % regs.len()];
                a != b && trial.merge_registers_checked(&d, &lt, a, b).is_ok()
            } else {
                let mods: Vec<_> = trial.modules().map(|m| m.id()).collect();
                if mods.len() < 2 { continue; }
                let a = mods[x as usize % mods.len()];
                let b = mods[y as usize % mods.len()];
                a != b && trial.merge_modules(&d, a, b).is_ok()
            };
            if !merged { continue; }
            let Ok(e) = Etpn::from_parts(&d, &s, &trial) else { continue; };
            let re = prev_ta.reanalyze(prev_e.data_path(), e.data_path(), &[]);
            let dense = TestabilityAnalysis::analyze_dense(e.data_path());
            prop_assert!(re == dense, "incremental diverged from dense");
            prop_assert_eq!(re.sweeps_used(), dense.sweeps_used());
            alloc = trial;
            prev_ta = re;
            prev_e = e;
        }
    }

    /// Marking arbitrary extra nodes dirty forces re-evaluation but can
    /// never change the result.
    #[test]
    fn extra_dirty_is_result_neutral(spec in spec_strategy(), pick in any::<u8>()) {
        let (_d, e, ta) = analyzed(&spec);
        let dp = e.data_path();
        let node = dp.nodes()[pick as usize % dp.num_nodes()].id();
        let re = ta.reanalyze(dp, dp, &[node]);
        prop_assert!(re == ta);
        prop_assert_eq!(re.sweeps_used(), ta.sweeps_used());
    }

    /// The balance score is symmetric over random profiles and maximal
    /// pairs are complementary.
    #[test]
    fn balance_score_is_symmetric(
        c1 in 0.0f64..=1.0, o1 in 0.0f64..=1.0,
        c2 in 0.0f64..=1.0, o2 in 0.0f64..=1.0,
    ) {
        let a = NodeProfile { c: c1, o: o1 };
        let b = NodeProfile { c: c2, o: o2 };
        let ab = balance_score_profiles(a, b);
        let ba = balance_score_profiles(b, a);
        prop_assert!((ab - ba).abs() < 1e-12);
    }
}
