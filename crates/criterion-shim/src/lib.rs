//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the `hlts-bench` benches use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `bench_function`,
//! `bench_with_input`, the [`criterion_group!`]/[`criterion_main!`]
//! macros and [`black_box`] — backed by a simple median-of-samples
//! wall-clock timer instead of criterion's statistical machinery.
//!
//! Each benchmark prints one line:
//! `bench <group>/<id>  median <t>  (n = <iters/sample> x <samples>)`.
//! Results are also recorded on the [`Criterion`] value so harness
//! `main`s can assert on relative timings (see
//! [`Criterion::median_ns`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant-folding, mirroring
/// `criterion::black_box`. (`std::hint::black_box` under the hood.)
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration timer handle passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f`, called in batches; the median batch time divided by the
    /// batch size is the reported per-iteration cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up & batch sizing: aim for ≥ ~1ms per sample so Instant
        // granularity is negligible, capped to keep total time bounded.
        let probe = Instant::now();
        black_box(f());
        let one = probe.elapsed().max(Duration::from_nanos(20));
        let iters = (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 100_000) as u64;
        let samples = 15usize;
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        let mid = ns[ns.len() / 2];
        mid as f64 / self.iters_per_sample as f64
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

/// The bench context, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: HashMap<String, f64>,
}

impl Criterion {
    /// Run and report one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        self.record(name.to_string(), &b);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Median per-iteration nanoseconds of a completed benchmark
    /// (`group/function/parameter`), if it ran. Extension over
    /// criterion's API used by harness `main`s to assert speedups.
    #[must_use]
    pub fn median_ns(&self, full_name: &str) -> Option<f64> {
        self.results.get(full_name).copied()
    }

    fn record(&mut self, full_name: String, b: &Bencher) {
        let med = b.median_ns();
        println!(
            "bench {full_name:<48} median {}  (n = {} x {})",
            human(med),
            b.iters_per_sample,
            b.samples.len()
        );
        self.results.insert(full_name, med);
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes time itself.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run and report one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.criterion.record(format!("{}/{}", self.name, id), &b);
        self
    }

    /// Run and report one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        self.criterion.record(format!("{}/{}", self.name, id), &b);
        self
    }

    /// Close the group (no-op; printing is immediate).
    pub fn finish(self) {}
}

/// Bundle bench functions under one runner name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_result() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let med = c.median_ns("noop").expect("recorded");
        assert!(med.is_finite() && med >= 0.0);
    }

    #[test]
    fn group_names_compose() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert!(c.median_ns("g/f/3").is_some());
    }
}
