//! Property-based tests for ETPN lowering: on random behaviors with
//! random (legal) merge storms, the lowered representation must satisfy
//! its structural invariants.

use hlts_alloc::Allocation;
use hlts_dfg::{Dfg, DfgBuilder, OpKind};
use hlts_etpn::{CriticalPathEngine, Etpn};
use hlts_sched::{list_schedule, ListPriority};
use proptest::prelude::*;

fn build_dfg(spec: &[(u8, u8, u8)]) -> Dfg {
    let mut b = DfgBuilder::new("prop");
    let mut vals = vec![b.input("i0"), b.input("i1")];
    for (n, &(k, x, y)) in spec.iter().enumerate() {
        let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Or];
        let kind = kinds[k as usize % kinds.len()];
        let a = vals[x as usize % vals.len()];
        let c = vals[y as usize % vals.len()];
        let out = b
            .op(&format!("N{n}"), kind, &[a, c], &format!("v{n}"))
            .expect("fresh name");
        vals.push(out);
    }
    let last = *vals.last().expect("nonempty");
    b.mark_output(last);
    b.finish().expect("well-formed")
}

fn spec_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12)
}

fn lowered(
    spec: &[(u8, u8, u8)],
    merges: &[(u8, u8, bool)],
) -> (Dfg, hlts_sched::Schedule, Allocation, Etpn) {
    let d = build_dfg(spec);
    let mut a = Allocation::one_to_one(&d);
    for &(x, y, register) in merges {
        if register {
            let regs: Vec<_> = a.registers().map(|r| r.id()).collect();
            let _ = a.merge_registers(regs[x as usize % regs.len()], regs[y as usize % regs.len()]);
        } else {
            let mods: Vec<_> = a.modules().map(|m| m.id()).collect();
            let _ = a.merge_modules(
                &d,
                mods[x as usize % mods.len()],
                mods[y as usize % mods.len()],
            );
        }
    }
    // a schedule honoring the binding (register overlaps may remain —
    // lowering does not require lifetime legality, only structure)
    let s =
        list_schedule(&d, &a.conflict_groups(), ListPriority::CriticalPath).expect("schedulable");
    let e = Etpn::from_parts(&d, &s, &a).expect("lowerable");
    (d, s, a, e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural inventory: one data-path node per live register and
    /// module, one port node per PI/PO, and the control part's critical
    /// path equals the schedule latency (loop-free behaviors).
    #[test]
    fn lowering_inventory_is_exact(
        spec in spec_strategy(),
        merges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
    ) {
        let (d, s, a, e) = lowered(&spec, &merges);
        let dp = e.data_path();
        prop_assert_eq!(dp.register_nodes().len(), a.num_registers());
        prop_assert_eq!(dp.module_nodes().len(), a.num_modules());
        let pis = dp.nodes().iter().filter(|n| n.kind().is_primary_input()).count();
        prop_assert_eq!(pis, d.inputs().count());
        let pos = dp.nodes().iter().filter(|n| n.kind().is_primary_output()).count();
        prop_assert_eq!(pos, d.outputs().count());
        prop_assert_eq!(e.execution_time(), s.num_steps());
    }

    /// Every module node is fed on every port one of its operations
    /// reads, and drives the register of every value it defines.
    #[test]
    fn module_connectivity_is_complete(
        spec in spec_strategy(),
        merges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
    ) {
        let (d, _s, a, e) = lowered(&spec, &merges);
        let dp = e.data_path();
        for m in a.modules() {
            let mn = dp.node_of_module(m.id()).expect("module node exists");
            let max_arity = m.ops().iter().map(|&o| d.op(o).inputs().len()).max().unwrap_or(0);
            for port in 0..max_arity {
                let fed = dp.in_arc_ids(mn).iter().any(|&a| dp.arc(a).port() == port);
                prop_assert!(fed, "port {port} of {} unfed", dp.node(mn).label());
            }
            for &o in m.ops() {
                if let Some(out) = d.op(o).output() {
                    if let Some(r) = a.register_of(out) {
                        let rn = dp.node_of_register(r).expect("register node exists");
                        let drives = dp.out_arc_ids(mn).iter().any(|&a| dp.arc(a).to() == rn);
                        prop_assert!(drives);
                    }
                }
            }
        }
    }

    /// Every transfer arc is guarded by at least one control place that
    /// actually exists in the control net.
    #[test]
    fn every_arc_is_guarded(
        spec in spec_strategy(),
        merges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
    ) {
        let (_d, _s, _a, e) = lowered(&spec, &merges);
        let dp = e.data_path();
        let num_places = e.control().num_places();
        for arc in dp.arcs() {
            prop_assert!(!arc.guards().is_empty());
            for p in arc.guards() {
                prop_assert!(p.index() < num_places);
            }
        }
    }

    /// The cached critical-path engine is an exact drop-in for the
    /// from-scratch reachability tree: on random lowered control nets
    /// the memoized answer (first query = miss, second = hit) and the
    /// single-token chain shortcut all agree with
    /// [`ControlNet::critical_path`].
    #[test]
    fn cached_engine_matches_fresh_reachability(
        spec in spec_strategy(),
        merges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
    ) {
        let (_d, _s, _a, e) = lowered(&spec, &merges);
        let net = e.control();
        let fresh = net.critical_path();
        if let Some(chain) = net.chain_critical_path() {
            prop_assert_eq!(chain, fresh, "chain shortcut diverged");
        }
        let engine = CriticalPathEngine::new();
        prop_assert_eq!(engine.critical_path(net), fresh, "engine miss path diverged");
        prop_assert_eq!(engine.critical_path(net), fresh, "engine hit path diverged");
        prop_assert_eq!(engine.stats().hits, 1);
    }

    /// Incremental ΔE through the shared engine equals the from-scratch
    /// difference of two independent reachability analyses, for random
    /// (base, trial) pairs of lowered designs.
    #[test]
    fn engine_delta_e_matches_scratch_difference(
        spec in spec_strategy(),
        base_merges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
        trial_merges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
    ) {
        let (_d, _s, _a, base) = lowered(&spec, &base_merges);
        let (_d2, _s2, _a2, trial) = lowered(&spec, &trial_merges);
        let scratch =
            trial.control().critical_path() as i64 - base.control().critical_path() as i64;
        let engine = CriticalPathEngine::new();
        prop_assert_eq!(engine.delta_e(base.control(), trial.control()), scratch);
        // and again, now answered entirely from the memo
        prop_assert_eq!(engine.delta_e(base.control(), trial.control()), scratch);
    }

    /// Mux counting is consistent between the binding-level and the
    /// structural data-path counts for register sinks: fan-in above one
    /// at any (node, port) is what both count.
    #[test]
    fn mux_count_is_nonnegative_and_bounded(
        spec in spec_strategy(),
        merges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
    ) {
        let (_d, _s, _a, e) = lowered(&spec, &merges);
        let dp = e.data_path();
        // each arc can contribute at most one 2:1 mux
        prop_assert!(dp.mux_count() <= dp.num_arcs());
    }
}
