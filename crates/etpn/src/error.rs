use std::error::Error;
use std::fmt;

/// Errors from ETPN structural operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EtpnError {
    /// An id referenced a node/arc/place/transition that does not exist.
    InvalidId(String),
    /// The control net has no initial or no final place.
    MalformedControl(String),
}

impl fmt::Display for EtpnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtpnError::InvalidId(s) => write!(f, "invalid id: {s}"),
            EtpnError::MalformedControl(s) => write!(f, "malformed control net: {s}"),
        }
    }
}

impl Error for EtpnError {}
