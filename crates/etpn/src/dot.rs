//! GraphViz DOT export of the ETPN representation, for inspecting
//! synthesized data paths and control nets visually.

use std::fmt::Write as _;

use crate::{ControlNet, DataPath, DpNodeKind};

/// Render the data path as a GraphViz digraph: registers as boxes,
/// modules as trapezoid-ish records, ports as ellipses; each arc
/// labeled with its guarding control places.
///
/// # Example
///
/// ```
/// use hlts_etpn::{data_path_to_dot, DataPath};
///
/// let dot = data_path_to_dot(&DataPath::new(), "empty");
/// assert!(dot.starts_with("digraph empty"));
/// ```
#[must_use]
pub fn data_path_to_dot(dp: &DataPath, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=TB;");
    for node in dp.nodes() {
        let (shape, style) = match node.kind() {
            DpNodeKind::Register(_) => ("box", "filled"),
            DpNodeKind::Module { .. } => ("invtrapezium", "filled"),
            DpNodeKind::PrimaryInput(_) | DpNodeKind::PrimaryOutput(_) => ("ellipse", "solid"),
            DpNodeKind::Const(_) => ("diamond", "solid"),
            DpNodeKind::ConditionOut(_) => ("ellipse", "dashed"),
            // DpNodeKind is non-exhaustive for downstream crates only
            #[allow(unreachable_patterns)]
            _ => ("box", "solid"),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape={shape}, style={style}];",
            node.id().index(),
            node.label().replace('"', "'"),
        );
    }
    for arc in dp.arcs() {
        let guards: Vec<String> = arc.guards().iter().map(ToString::to_string).collect();
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"p{} [{}]\"];",
            arc.from().index(),
            arc.to().index(),
            arc.port(),
            guards.join(","),
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render the control Petri net as a GraphViz digraph: places as
/// circles (doubled for initial/final), transitions as bars.
#[must_use]
pub fn control_to_dot(net: &ControlNet, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for p in net.place_ids() {
        let shape = if net.initial_marking().contains(&p) || net.final_places().contains(&p) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(
            out,
            "  {p} [label=\"{}\", shape={shape}];",
            net.place_label(p)
        );
    }
    for (t, inputs, outputs, guard) in net.transitions_view() {
        let label = match guard {
            Some((v, pol)) => format!("{t} [{}{v}]", if pol { "" } else { "!" }),
            None => t.to_string(),
        };
        let _ = writeln!(out, "  {t} [label=\"{label}\", shape=box, height=0.1];");
        for p in inputs {
            let _ = writeln!(out, "  {p} -> {t};");
        }
        for p in outputs {
            let _ = writeln!(out, "  {t} -> {p};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_alloc::Allocation;
    use hlts_dfg::{DfgBuilder, OpKind};
    use hlts_sched::{list_schedule, ListPriority};

    #[test]
    fn data_path_dot_contains_nodes_and_arcs() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let y = b.op("N1", OpKind::Add, &[a, c], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        let alloc = Allocation::one_to_one(&d);
        let e = crate::Etpn::from_parts(&d, &s, &alloc).unwrap();
        let dot = data_path_to_dot(e.data_path(), "t");
        assert!(dot.contains("digraph t"));
        assert!(dot.contains("R{a}"));
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn control_dot_marks_initial_and_final() {
        let (net, _) = ControlNet::linear(2);
        let dot = control_to_dot(&net, "ctl");
        assert!(dot.matches("doublecircle").count() >= 2);
        assert!(dot.contains("shape=box"));
    }
}
