//! Lowering a scheduled, allocated behavior into the ETPN representation.
//!
//! Lowering rules (one data-path node per physical resource):
//!
//! * every primary input / primary output value gets a port node;
//! * every constant gets a hardwired constant node;
//! * every live register of the [`Allocation`] gets a register node;
//! * every live module gets a functional-module node;
//! * every condition value gets a condition-output node feeding the
//!   controller;
//! * a transfer arc is added per (source, sink, port) with the control
//!   place of the step(s) in which the transfer occurs as guards:
//!   input loads are guarded by the first step, operand fetches and
//!   result stores by the executing operation's step place, output
//!   observations by the final place, and loop-carried register-to-
//!   register copies by the last step place;
//! * the control part is a linear chain of step places; when the
//!   behavior has loop-carried values and produces a condition flag, a
//!   condition-guarded loop-back transition is added (the Diffeq
//!   pattern).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use hlts_alloc::Allocation;
use hlts_dfg::{Dfg, ValueId};
use hlts_sched::Schedule;

use crate::{ControlNet, DataPath, DpNodeId, DpNodeKind, Etpn, PlaceId};

/// Errors from ETPN lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EtpnBuildError {
    /// The schedule covers a different number of operations than the
    /// graph has.
    ScheduleMismatch {
        /// Operations in the graph.
        expected: usize,
        /// Operations in the schedule.
        got: usize,
    },
    /// A data value is not bound to any register.
    MissingRegister(String),
    /// The allocation was built over a different graph.
    AllocationMismatch,
}

impl fmt::Display for EtpnBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtpnBuildError::ScheduleMismatch { expected, got } => {
                write!(f, "schedule covers {got} ops, graph has {expected}")
            }
            EtpnBuildError::MissingRegister(v) => {
                write!(f, "value `{v}` has no register binding")
            }
            EtpnBuildError::AllocationMismatch => {
                write!(f, "allocation was built over a different graph")
            }
        }
    }
}

impl Error for EtpnBuildError {}

pub(crate) fn build(
    dfg: &Dfg,
    schedule: &Schedule,
    allocation: &Allocation,
) -> Result<Etpn, EtpnBuildError> {
    if schedule.num_ops() != dfg.num_ops() {
        return Err(EtpnBuildError::ScheduleMismatch {
            expected: dfg.num_ops(),
            got: schedule.num_ops(),
        });
    }
    if !allocation.covers(dfg) {
        return Err(EtpnBuildError::AllocationMismatch);
    }

    let (mut control, steps) = ControlNet::linear(schedule.num_steps());
    let final_place: PlaceId = *control
        .final_places()
        .iter()
        .next()
        .expect("linear net has a final place");
    // Loop-back for looping behaviors with a condition flag.
    if !dfg.loop_carried().is_empty() && !steps.is_empty() {
        if let Some(cond) = dfg.values().iter().find(|v| v.is_condition()) {
            control.add_loop_back(&steps, cond.id());
        }
    }
    let last_guard = steps.last().copied().unwrap_or(final_place);

    let mut dp = DataPath::new();
    let mut reg_node: HashMap<usize, DpNodeId> = HashMap::new();
    let mut mod_node: HashMap<usize, DpNodeId> = HashMap::new();
    let mut const_node: HashMap<ValueId, DpNodeId> = HashMap::new();
    let mut cond_node: HashMap<ValueId, DpNodeId> = HashMap::new();

    for r in allocation.registers() {
        let names: Vec<&str> = r.values().iter().map(|&v| dfg.value(v).name()).collect();
        let id = dp.add_node(
            DpNodeKind::Register(r.id()),
            format!("R{{{}}}", names.join(",")),
        );
        reg_node.insert(r.id().index(), id);
    }
    for m in allocation.modules() {
        let kinds = m.kinds(dfg);
        let syms: Vec<&str> = kinds.iter().map(|k| k.symbol()).collect();
        let names: Vec<&str> = m.ops().iter().map(|&o| dfg.op(o).name()).collect();
        let id = dp.add_node(
            DpNodeKind::Module { id: m.id(), kinds },
            format!("FU({}){{{}}}", syms.join(""), names.join(",")),
        );
        mod_node.insert(m.id().index(), id);
    }

    // Source node for a value feeding a module port.
    let source_of = |dp: &mut DataPath,
                     const_node: &mut HashMap<ValueId, DpNodeId>,
                     v: ValueId|
     -> Result<DpNodeId, EtpnBuildError> {
        if let Some(r) = allocation.register_of(v) {
            return Ok(reg_node[&r.index()]);
        }
        let val = dfg.value(v);
        if val.kind().is_const() {
            let id = *const_node
                .entry(v)
                .or_insert_with(|| dp.add_node(DpNodeKind::Const(v), format!("C({})", val.name())));
            return Ok(id);
        }
        if val.is_condition() {
            // a condition consumed as data: feed from its producing module
            if let Some(op) = dfg.def_of(v) {
                return Ok(mod_node[&allocation.module_of(op).index()]);
            }
        }
        Err(EtpnBuildError::MissingRegister(val.name().to_owned()))
    };

    // Primary inputs are latched from their ports at the end of the step
    // *before* their first consumer reads them (on-demand loading; see
    // the lifetime conventions in `hlts-sched`). A value first used in
    // step 0 latches during the setup state — the final place, which
    // doubles as the setup state of the next run.
    for v in dfg.inputs() {
        let port = dp.add_node(
            DpNodeKind::PrimaryInput(v),
            format!("in({})", dfg.value(v).name()),
        );
        let r = allocation
            .register_of(v)
            .ok_or_else(|| EtpnBuildError::MissingRegister(dfg.value(v).name().to_owned()))?;
        let load_guard = dfg
            .uses_of(v)
            .iter()
            .map(|&o| schedule.step_of(o))
            .min()
            .map(|s| {
                if s == 0 {
                    final_place
                } else {
                    steps.get(s - 1).copied().unwrap_or(final_place)
                }
            })
            .unwrap_or(final_place);
        dp.add_arc(port, reg_node[&r.index()], 0, [load_guard]);
    }

    // Operation transfers.
    for op in dfg.ops() {
        let step = schedule.step_of(op.id());
        let guard = steps.get(step).copied().unwrap_or(final_place);
        let m = mod_node[&allocation.module_of(op.id()).index()];
        for (port, &v) in op.inputs().iter().enumerate() {
            let src = source_of(&mut dp, &mut const_node, v)?;
            dp.add_arc(src, m, port, [guard]);
        }
        if let Some(out) = op.output() {
            if dfg.value(out).is_condition() {
                let c = *cond_node.entry(out).or_insert_with(|| {
                    dp.add_node(
                        DpNodeKind::ConditionOut(out),
                        format!("cond({})", dfg.value(out).name()),
                    )
                });
                dp.add_arc(m, c, 0, [guard]);
            } else {
                let r = allocation.register_of(out).ok_or_else(|| {
                    EtpnBuildError::MissingRegister(dfg.value(out).name().to_owned())
                })?;
                dp.add_arc(m, reg_node[&r.index()], 0, [guard]);
            }
        }
    }

    // Primary outputs observed at the final state.
    for v in dfg.outputs() {
        let port = dp.add_node(
            DpNodeKind::PrimaryOutput(v),
            format!("out({})", dfg.value(v).name()),
        );
        let r = allocation
            .register_of(v)
            .ok_or_else(|| EtpnBuildError::MissingRegister(dfg.value(v).name().to_owned()))?;
        dp.add_arc(reg_node[&r.index()], port, 0, [final_place]);
    }

    // Loop-carried copies at the last step (register-to-register when the
    // pair is split across registers; free when they share one).
    for &(src, dst) in dfg.loop_carried() {
        let (Some(rs), Some(rd)) = (allocation.register_of(src), allocation.register_of(dst))
        else {
            continue;
        };
        if rs != rd {
            dp.add_arc(
                reg_node[&rs.index()],
                reg_node[&rd.index()],
                0,
                [last_guard],
            );
        }
    }

    Ok(Etpn::new(dp, control))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};
    use hlts_sched::{list_schedule, ListPriority};

    fn small() -> (Dfg, Schedule, Allocation) {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op("N1", OpKind::Add, &[a, c], "t").unwrap();
        let y = b.op("N2", OpKind::Mul, &[t, c], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        let alloc = Allocation::one_to_one(&d);
        (d, s, alloc)
    }

    #[test]
    fn node_inventory() {
        let (d, s, a) = small();
        let e = Etpn::from_parts(&d, &s, &a).unwrap();
        let dp = e.data_path();
        // 2 PIs + 4 registers (a,c,t,y) + 2 modules + 1 PO = 9
        assert_eq!(dp.num_nodes(), 9);
        assert_eq!(dp.register_nodes().len(), 4);
        assert_eq!(dp.module_nodes().len(), 2);
    }

    #[test]
    fn execution_time_matches_schedule() {
        let (d, s, a) = small();
        let e = Etpn::from_parts(&d, &s, &a).unwrap();
        assert_eq!(e.execution_time(), s.num_steps());
    }

    #[test]
    fn guards_follow_steps() {
        let (d, s, a) = small();
        let e = Etpn::from_parts(&d, &s, &a).unwrap();
        let dp = e.data_path();
        // the arc from the adder module into register t is guarded by S0
        let n1 = d.op_by_name("N1").unwrap();
        let m = dp.node_of_module(a.module_of(n1)).unwrap();
        let t = d.value_by_name("t").unwrap();
        let rt = dp.node_of_register(a.register_of(t).unwrap()).unwrap();
        let arc = dp
            .in_arc_ids(rt)
            .iter()
            .map(|&a| dp.arc(a))
            .find(|arc| arc.from() == m)
            .expect("module feeds t's register");
        let labels: Vec<&str> = arc
            .guards()
            .iter()
            .map(|&p| e.control().place_label(p))
            .collect();
        assert_eq!(labels, vec!["S0"]);
    }

    #[test]
    fn missing_register_reported() {
        let (d, s, _) = small();
        // an allocation built over a smaller graph misses registers
        let mut b2 = DfgBuilder::new("other");
        let x = b2.input("x");
        let z = b2.input("z");
        b2.op("M1", OpKind::Add, &[x, z], "w").unwrap();
        let other = b2.finish().unwrap();
        let alloc = Allocation::one_to_one(&other);
        let e = Etpn::from_parts(&d, &s, &alloc);
        assert!(e.is_err());
    }

    #[test]
    fn condition_gets_condition_node_and_loop_back() {
        let mut b = DfgBuilder::new("loopy");
        let x = b.input("x");
        let dx = b.input("dx");
        let a = b.input("a");
        let x1 = b.op("N1", OpKind::Add, &[x, dx], "x1").unwrap();
        let _c = b.op("N2", OpKind::Lt, &[x1, a], "c").unwrap();
        b.mark_output(x1);
        b.loop_carried(x1, x);
        let d = b.finish().unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        let alloc = Allocation::one_to_one(&d);
        let e = Etpn::from_parts(&d, &s, &alloc).unwrap();
        let dp = e.data_path();
        assert!(dp
            .nodes()
            .iter()
            .any(|n| matches!(n.kind(), DpNodeKind::ConditionOut(_))));
        // loop-back keeps the critical path at one iteration
        assert_eq!(e.execution_time(), s.num_steps());
        // x1 and x in different registers: loop-carried copy arc exists
        let rx = dp.node_of_register(alloc.register_of(x).unwrap()).unwrap();
        let rx1 = dp.node_of_register(alloc.register_of(x1).unwrap()).unwrap();
        assert!(dp
            .in_arc_ids(rx)
            .iter()
            .any(|&a| dp.arc(a).from() == rx1));
    }

    #[test]
    fn shared_register_removes_loop_copy_arc() {
        let mut b = DfgBuilder::new("loopy");
        let x = b.input("x");
        let dx = b.input("dx");
        let a = b.input("a");
        let x1 = b.op("N1", OpKind::Add, &[x, dx], "x1").unwrap();
        let _c = b.op("N2", OpKind::Lt, &[x1, a], "c").unwrap();
        b.mark_output(x1);
        b.loop_carried(x1, x);
        let d = b.finish().unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        let mut alloc = Allocation::one_to_one(&d);
        let rx = alloc.register_of(x).unwrap();
        let rx1 = alloc.register_of(x1).unwrap();
        alloc.merge_registers(rx, rx1).unwrap();
        let e = Etpn::from_parts(&d, &s, &alloc).unwrap();
        let dp = e.data_path();
        let rn = dp.node_of_register(rx).unwrap();
        // no register-to-register copy arc into the shared register
        assert!(dp
            .in_arc_ids(rn)
            .iter()
            .all(|&a| !dp.node(dp.arc(a).from()).kind().is_register()));
    }

    #[test]
    fn mux_count_reflects_sharing() {
        let (d, s, mut a) = small();
        let e1 = Etpn::from_parts(&d, &s, &a).unwrap();
        let base = e1.data_path().mux_count();
        // merge registers t and a (disjoint: a dies step 0... actually a
        // dies step 1 since c is used in step 1, a only step 0) — merge
        // the two module hosts instead, which multiplexes port sources.
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        // add/mul are incompatible; merge registers a & t instead
        let va = d.value_by_name("a").unwrap();
        let vt = d.value_by_name("t").unwrap();
        let _ = (n1, n2);
        a.merge_registers(a.register_of(va).unwrap(), a.register_of(vt).unwrap())
            .unwrap();
        let e2 = Etpn::from_parts(&d, &s, &a).unwrap();
        // sharing a register for a and t merges two sources into one node
        // feeding two sinks; mux count may change either way but the
        // build must stay consistent
        assert!(e2.data_path().num_nodes() < e1.data_path().num_nodes());
        let _ = base;
    }
}
