//! The data-path half of the ETPN representation.
//!
//! "The data path is a directed graph with nodes and arcs. The node
//! represents storage (registers) and manipulation of data. The arc
//! connecting two nodes represents the flow of data." (paper, §2).
//! Arcs carry *guards* — the control places whose tokens enable the
//! transfer — which ties the two halves of the representation together.

use std::collections::BTreeSet;
use std::fmt;

use hlts_alloc::{ModuleId, RegisterId};
use hlts_dfg::{OpKind, ValueId};

use crate::PlaceId;

/// Index of a [`DpNode`] in its [`DataPath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DpNodeId(pub(crate) u32);

impl DpNodeId {
    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        DpNodeId(u32::try_from(index).expect("node index fits in u32"))
    }
}

impl fmt::Display for DpNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a [`DpArc`] in its [`DataPath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DpArcId(pub(crate) u32);

impl DpArcId {
    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        DpArcId(u32::try_from(index).expect("arc index fits in u32"))
    }
}

impl fmt::Display for DpArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// What a data-path node is.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DpNodeKind {
    /// Primary input port delivering the given behavioral value.
    PrimaryInput(ValueId),
    /// Primary output port observing the given behavioral value.
    PrimaryOutput(ValueId),
    /// A storage register (one or more behavioral values time-share it).
    Register(RegisterId),
    /// A functional module executing the given operation kinds.
    Module {
        /// Binding id of the module.
        id: ModuleId,
        /// The operation kinds the unit supports.
        kinds: BTreeSet<OpKind>,
    },
    /// A hardwired constant.
    Const(ValueId),
    /// A 1-bit condition signal leaving the data path for the controller.
    ConditionOut(ValueId),
}

impl DpNodeKind {
    /// Whether the node is a register.
    #[must_use]
    pub fn is_register(&self) -> bool {
        matches!(self, DpNodeKind::Register(_))
    }

    /// Whether the node is a functional module.
    #[must_use]
    pub fn is_module(&self) -> bool {
        matches!(self, DpNodeKind::Module { .. })
    }

    /// Whether the node is a primary input port.
    #[must_use]
    pub fn is_primary_input(&self) -> bool {
        matches!(self, DpNodeKind::PrimaryInput(_))
    }

    /// Whether the node is a primary output port.
    #[must_use]
    pub fn is_primary_output(&self) -> bool {
        matches!(self, DpNodeKind::PrimaryOutput(_))
    }
}

/// One node of the data path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpNode {
    pub(crate) id: DpNodeId,
    pub(crate) kind: DpNodeKind,
    pub(crate) label: String,
}

impl DpNode {
    /// The node's id.
    #[must_use]
    pub fn id(&self) -> DpNodeId {
        self.id
    }

    /// The node's kind.
    #[must_use]
    pub fn kind(&self) -> &DpNodeKind {
        &self.kind
    }

    /// Human-readable label, e.g. `"R{a,c,x}"` or `"FU(*){N21,N24}"`.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// One guarded data-transfer arc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpArc {
    pub(crate) id: DpArcId,
    pub(crate) from: DpNodeId,
    pub(crate) to: DpNodeId,
    /// Input-port position at the sink (0 or 1 for binary modules;
    /// 0 for registers and output ports).
    pub(crate) port: usize,
    /// Control places whose tokens enable this transfer.
    pub(crate) guards: BTreeSet<PlaceId>,
}

impl DpArc {
    /// The arc's id.
    #[must_use]
    pub fn id(&self) -> DpArcId {
        self.id
    }

    /// Source node.
    #[must_use]
    pub fn from(&self) -> DpNodeId {
        self.from
    }

    /// Sink node.
    #[must_use]
    pub fn to(&self) -> DpNodeId {
        self.to
    }

    /// Sink input-port position.
    #[must_use]
    pub fn port(&self) -> usize {
        self.port
    }

    /// Control places enabling the transfer.
    #[must_use]
    pub fn guards(&self) -> &BTreeSet<PlaceId> {
        &self.guards
    }
}

/// The data-path graph.
#[derive(Debug, Clone, Default)]
pub struct DataPath {
    nodes: Vec<DpNode>,
    arcs: Vec<DpArc>,
    in_arcs: Vec<Vec<DpArcId>>,
    out_arcs: Vec<Vec<DpArcId>>,
}

impl DataPath {
    /// An empty data path.
    #[must_use]
    pub fn new() -> Self {
        DataPath::default()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, kind: DpNodeKind, label: impl Into<String>) -> DpNodeId {
        let id = DpNodeId::from_index(self.nodes.len());
        self.nodes.push(DpNode {
            id,
            kind,
            label: label.into(),
        });
        self.in_arcs.push(Vec::new());
        self.out_arcs.push(Vec::new());
        id
    }

    /// Add an arc `from -> to.port` guarded by `guards`, or extend the
    /// guard set of an existing identical arc. Returns the arc id.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn add_arc(
        &mut self,
        from: DpNodeId,
        to: DpNodeId,
        port: usize,
        guards: impl IntoIterator<Item = PlaceId>,
    ) -> DpArcId {
        assert!(from.index() < self.nodes.len(), "bad source {from}");
        assert!(to.index() < self.nodes.len(), "bad sink {to}");
        if let Some(&aid) = self.in_arcs[to.index()].iter().find(|&&a| {
            let arc = &self.arcs[a.index()];
            arc.from == from && arc.port == port
        }) {
            self.arcs[aid.index()].guards.extend(guards);
            return aid;
        }
        let id = DpArcId::from_index(self.arcs.len());
        self.arcs.push(DpArc {
            id,
            from,
            to,
            port,
            guards: guards.into_iter().collect(),
        });
        self.out_arcs[from.index()].push(id);
        self.in_arcs[to.index()].push(id);
        id
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of arcs.
    #[must_use]
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// All nodes in id order.
    #[must_use]
    pub fn nodes(&self) -> &[DpNode] {
        &self.nodes
    }

    /// All arcs in id order.
    #[must_use]
    pub fn arcs(&self) -> &[DpArc] {
        &self.arcs
    }

    /// A node by id.
    #[must_use]
    pub fn node(&self, id: DpNodeId) -> &DpNode {
        &self.nodes[id.index()]
    }

    /// An arc by id.
    #[must_use]
    pub fn arc(&self, id: DpArcId) -> &DpArc {
        &self.arcs[id.index()]
    }

    /// Ids of incoming arcs of `node`, in insertion order. Resolve an id
    /// with [`DataPath::arc`]; neither step allocates.
    #[must_use]
    pub fn in_arc_ids(&self, node: DpNodeId) -> &[DpArcId] {
        &self.in_arcs[node.index()]
    }

    /// Ids of outgoing arcs of `node`, in insertion order. Resolve an id
    /// with [`DataPath::arc`]; neither step allocates.
    #[must_use]
    pub fn out_arc_ids(&self, node: DpNodeId) -> &[DpArcId] {
        &self.out_arcs[node.index()]
    }

    /// Node ids of all registers.
    #[must_use]
    pub fn register_nodes(&self) -> Vec<DpNodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_register())
            .map(|n| n.id)
            .collect()
    }

    /// Node ids of all modules.
    #[must_use]
    pub fn module_nodes(&self) -> Vec<DpNodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_module())
            .map(|n| n.id)
            .collect()
    }

    /// Find the node representing binding register `r`.
    #[must_use]
    pub fn node_of_register(&self, r: RegisterId) -> Option<DpNodeId> {
        self.nodes
            .iter()
            .find(|n| matches!(n.kind, DpNodeKind::Register(x) if x == r))
            .map(|n| n.id)
    }

    /// Find the node representing binding module `m`.
    #[must_use]
    pub fn node_of_module(&self, m: ModuleId) -> Option<DpNodeId> {
        self.nodes
            .iter()
            .find(|n| matches!(&n.kind, DpNodeKind::Module { id, .. } if *id == m))
            .map(|n| n.id)
    }

    /// Count multiplexer 2-to-1 equivalents: for every (node, port) sink
    /// with `s > 1` incoming arcs, `s - 1` muxes.
    #[must_use]
    pub fn mux_count(&self) -> usize {
        let mut total = 0;
        for (i, arcs) in self.in_arcs.iter().enumerate() {
            let max_port = arcs
                .iter()
                .map(|&a| self.arcs[a.index()].port)
                .max()
                .unwrap_or(0);
            for port in 0..=max_port {
                let fanin = arcs
                    .iter()
                    .filter(|&&a| self.arcs[a.index()].port == port)
                    .count();
                total += fanin.saturating_sub(1);
            }
            let _ = i;
        }
        total
    }

    /// Whether `node` sits on a structural self-loop: one of its
    /// successors is also one of its predecessors, or it directly feeds
    /// itself.
    #[must_use]
    pub fn on_self_loop(&self, node: DpNodeId) -> bool {
        let is_pred = |x: DpNodeId| {
            self.in_arcs[node.index()]
                .iter()
                .any(|&a| self.arcs[a.index()].from == x)
        };
        if is_pred(node) {
            return true;
        }
        self.out_arcs[node.index()]
            .iter()
            .any(|&a| is_pred(self.arcs[a.index()].to))
    }

    /// A 64-bit structural fingerprint of the graph: node kinds (with
    /// their binding identities) and arc wiring `(from, to, port)`.
    /// Arc **guards** and node labels are excluded on purpose: the
    /// testability fixpoint never reads them, and guards are the only
    /// part of the data path the schedule influences — so two lowerings
    /// that differ only in scheduling share a fingerprint (and hence a
    /// [`TestabilityEngine`] cache entry).
    ///
    /// [`TestabilityEngine`]:
    /// ../hlts_testability/struct.TestabilityEngine.html
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        // FNV-1a over a canonical byte walk, as ControlNet does.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.nodes.len() as u64);
        for node in &self.nodes {
            match &node.kind {
                DpNodeKind::PrimaryInput(v) => {
                    mix(0);
                    mix(v.index() as u64);
                }
                DpNodeKind::PrimaryOutput(v) => {
                    mix(1);
                    mix(v.index() as u64);
                }
                DpNodeKind::Register(r) => {
                    mix(2);
                    mix(r.index() as u64);
                }
                DpNodeKind::Module { id, kinds } => {
                    mix(3);
                    mix(id.index() as u64);
                    mix(kinds.len() as u64);
                    for k in kinds {
                        // OpKind is non_exhaustive upstream; its symbol
                        // is unique per kind and stable.
                        for b in k.symbol().bytes() {
                            mix(u64::from(b));
                        }
                    }
                }
                DpNodeKind::Const(v) => {
                    mix(4);
                    mix(v.index() as u64);
                }
                DpNodeKind::ConditionOut(v) => {
                    mix(5);
                    mix(v.index() as u64);
                }
            }
        }
        mix(self.arcs.len() as u64);
        for arc in &self.arcs {
            mix(u64::from(arc.from.0));
            mix(u64::from(arc.to.0));
            mix(arc.port as u64);
        }
        h
    }

    /// Render the graph as `from -> to.port [guards]` lines for debugging
    /// and golden tests.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for arc in &self.arcs {
            let guards: Vec<String> = arc.guards.iter().map(|p| p.to_string()).collect();
            out.push_str(&format!(
                "{} -> {}.{} [{}]\n",
                self.nodes[arc.from.index()].label,
                self.nodes[arc.to.index()].label,
                arc.port,
                guards.join(",")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(i: usize) -> PlaceId {
        PlaceId::from_index(i)
    }

    #[test]
    fn add_and_query_nodes() {
        let mut dp = DataPath::new();
        let r = dp.add_node(DpNodeKind::Register(RegisterId::from_index(0)), "R0");
        let m = dp.add_node(
            DpNodeKind::Module {
                id: ModuleId::from_index(0),
                kinds: BTreeSet::from([OpKind::Add]),
            },
            "FU0",
        );
        assert_eq!(dp.num_nodes(), 2);
        assert!(dp.node(r).kind().is_register());
        assert!(dp.node(m).kind().is_module());
        assert_eq!(dp.register_nodes(), vec![r]);
        assert_eq!(dp.module_nodes(), vec![m]);
    }

    #[test]
    fn duplicate_arc_merges_guards() {
        let mut dp = DataPath::new();
        let r = dp.add_node(DpNodeKind::Register(RegisterId::from_index(0)), "R0");
        let m = dp.add_node(
            DpNodeKind::Module {
                id: ModuleId::from_index(0),
                kinds: BTreeSet::from([OpKind::Add]),
            },
            "FU0",
        );
        let a1 = dp.add_arc(r, m, 0, [place(0)]);
        let a2 = dp.add_arc(r, m, 0, [place(1)]);
        assert_eq!(a1, a2);
        assert_eq!(dp.num_arcs(), 1);
        assert_eq!(dp.arc(a1).guards().len(), 2);
        // different port: separate arc
        let a3 = dp.add_arc(r, m, 1, [place(0)]);
        assert_ne!(a1, a3);
        assert_eq!(dp.num_arcs(), 2);
    }

    #[test]
    fn mux_counting() {
        let mut dp = DataPath::new();
        let r0 = dp.add_node(DpNodeKind::Register(RegisterId::from_index(0)), "R0");
        let r1 = dp.add_node(DpNodeKind::Register(RegisterId::from_index(1)), "R1");
        let r2 = dp.add_node(DpNodeKind::Register(RegisterId::from_index(2)), "R2");
        let m = dp.add_node(
            DpNodeKind::Module {
                id: ModuleId::from_index(0),
                kinds: BTreeSet::from([OpKind::Add]),
            },
            "FU0",
        );
        dp.add_arc(r0, m, 0, [place(0)]);
        assert_eq!(dp.mux_count(), 0);
        dp.add_arc(r1, m, 0, [place(1)]);
        assert_eq!(dp.mux_count(), 1);
        dp.add_arc(r2, m, 0, [place(2)]);
        assert_eq!(dp.mux_count(), 2);
        dp.add_arc(r0, m, 1, [place(0)]);
        assert_eq!(dp.mux_count(), 2);
    }

    #[test]
    fn self_loop_detection() {
        let mut dp = DataPath::new();
        let r = dp.add_node(DpNodeKind::Register(RegisterId::from_index(0)), "R0");
        let m = dp.add_node(
            DpNodeKind::Module {
                id: ModuleId::from_index(0),
                kinds: BTreeSet::from([OpKind::Add]),
            },
            "FU0",
        );
        dp.add_arc(r, m, 0, [place(0)]);
        assert!(!dp.on_self_loop(r));
        dp.add_arc(m, r, 0, [place(0)]);
        assert!(dp.on_self_loop(r));
        assert!(dp.on_self_loop(m));
    }

    #[test]
    fn structural_hash_ignores_guards_and_labels_only() {
        let build = |label: &str, guard: usize, port: usize| {
            let mut dp = DataPath::new();
            let r = dp.add_node(DpNodeKind::Register(RegisterId::from_index(0)), label);
            let m = dp.add_node(
                DpNodeKind::Module {
                    id: ModuleId::from_index(0),
                    kinds: BTreeSet::from([OpKind::Add]),
                },
                "FU0",
            );
            dp.add_arc(r, m, port, [place(guard)]);
            dp
        };
        let a = build("R0", 0, 0);
        let b = build("other", 7, 0); // label + guard differ: same hash
        let c = build("R0", 0, 1); // port differs: different hash
        assert_eq!(a.structural_hash(), b.structural_hash());
        assert_ne!(a.structural_hash(), c.structural_hash());
        let mut d = build("R0", 0, 0);
        d.add_node(DpNodeKind::Const(hlts_dfg::ValueId::from_index(3)), "k");
        assert_ne!(a.structural_hash(), d.structural_hash());
    }

    #[test]
    fn arc_id_accessors_track_insertion_order() {
        let mut dp = DataPath::new();
        let r = dp.add_node(DpNodeKind::Register(RegisterId::from_index(0)), "R0");
        let m = dp.add_node(
            DpNodeKind::Module {
                id: ModuleId::from_index(0),
                kinds: BTreeSet::from([OpKind::Add]),
            },
            "FU0",
        );
        let a0 = dp.add_arc(r, m, 0, [place(0)]);
        let a1 = dp.add_arc(r, m, 1, [place(0)]);
        assert_eq!(dp.in_arc_ids(m), [a0, a1]);
        assert_eq!(dp.out_arc_ids(r), [a0, a1]);
        assert!(dp.in_arc_ids(r).is_empty());
        assert_eq!(dp.arc(a1).port(), 1);
    }
}
