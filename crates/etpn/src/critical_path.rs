//! The incremental critical-path engine.
//!
//! Algorithm 1 estimates ΔE for every shortlisted merge candidate,
//! every iteration, by lowering the tentative design and extracting the
//! critical path of its control Petri net from the reachability tree —
//! the step the paper itself flags as the expensive one (§4.2). Two
//! observations make this cheap:
//!
//! 1. **Repetition.** The same (schedule, binding) structures recur
//!    across iterations: rejected candidates are re-examined, and the
//!    committed trial of iteration *i* is re-lowered as the baseline of
//!    iteration *i+1*. Memoizing critical-path results keyed by
//!    [`ControlNet::structural_hash`] turns all of those into lookups.
//! 2. **Shape.** Every control net the schedule lowering emits is
//!    single-token (1-in/1-out transitions, one initial place), so its
//!    critical path is a longest place walk
//!    ([`ControlNet::chain_critical_path`]) — no marking sets, no
//!    reachability tree. Only genuinely concurrent fork/join nets fall
//!    back to [`ControlNet::critical_path`].
//!
//! The engine is shared by all candidate evaluations of a synthesis
//! run, including parallel ones: the memo sits behind a [`Mutex`] held
//! only for the lookup/insert, and the counters are atomics. Both paths
//! are property-tested equal to the from-scratch reference
//! (`crates/etpn/tests/properties.rs`, `tests/` in core).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::petri::ControlNet;

/// Counters describing how an engine resolved its queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries that had to compute a fresh result.
    pub misses: u64,
    /// Misses resolved by the single-token chain shortcut.
    pub chain_fast_path: u64,
    /// Misses resolved by full reachability-tree construction.
    pub full_reachability: u64,
}

impl CacheStats {
    /// Fraction of queries answered from the memo (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoizing, thread-safe critical-path evaluator for control nets.
///
/// Create one per synthesis run and route every execution-time query
/// through it; see the module docs for why this is sound and fast.
#[derive(Debug, Default)]
pub struct CriticalPathEngine {
    memo: Mutex<HashMap<u64, usize>>,
    hits: AtomicU64,
    misses: AtomicU64,
    chain_fast_path: AtomicU64,
    full_reachability: AtomicU64,
}

impl CriticalPathEngine {
    /// An empty engine.
    #[must_use]
    pub fn new() -> Self {
        CriticalPathEngine::default()
    }

    /// The critical path of `net`, memoized by structural hash.
    ///
    /// Equal to [`ControlNet::critical_path`] by construction: a miss
    /// computes via the chain shortcut when the net is single-token
    /// (which coincides with full reachability there) or via the full
    /// reachability tree otherwise, and the memo key covers the entire
    /// token-flow structure.
    ///
    /// # Panics
    ///
    /// Panics if the internal mutex was poisoned (a prior panic in
    /// another evaluation thread).
    #[must_use]
    pub fn critical_path(&self, net: &ControlNet) -> usize {
        let key = net.structural_hash();
        if let Some(&e) = self.memo.lock().expect("engine memo poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return e;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let e = match net.chain_critical_path() {
            Some(e) => {
                self.chain_fast_path.fetch_add(1, Ordering::Relaxed);
                e
            }
            None => {
                self.full_reachability.fetch_add(1, Ordering::Relaxed);
                net.critical_path()
            }
        };
        self.memo.lock().expect("engine memo poisoned").insert(key, e);
        e
    }

    /// ΔE of replacing `base` with `trial` (positive = slower), with
    /// both sides memoized. This is the quantity Algorithm 1 weighs by
    /// α per candidate.
    #[must_use]
    pub fn delta_e(&self, base: &ControlNet, trial: &ControlNet) -> i64 {
        self.critical_path(trial) as i64 - self.critical_path(base) as i64
    }

    /// Snapshot of the hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            chain_fast_path: self.chain_fast_path.load(Ordering::Relaxed),
            full_reachability: self.full_reachability.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized nets.
    ///
    /// # Panics
    ///
    /// Panics if the internal mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.memo.lock().expect("engine memo poisoned").len()
    }

    /// Whether the memo is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all memoized results (counters are kept).
    ///
    /// # Panics
    ///
    /// Panics if the internal mutex was poisoned.
    pub fn clear(&self) {
        self.memo.lock().expect("engine memo poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::ValueId;

    #[test]
    fn engine_matches_reference_on_linear_nets() {
        let engine = CriticalPathEngine::new();
        for n in 0..10 {
            let (net, _) = ControlNet::linear(n);
            assert_eq!(engine.critical_path(&net), net.critical_path(), "n={n}");
        }
        let s = engine.stats();
        assert_eq!(s.misses, 10);
        assert_eq!(s.chain_fast_path, 10, "linear nets use the shortcut");
    }

    #[test]
    fn repeated_queries_hit_the_memo() {
        let engine = CriticalPathEngine::new();
        let (net, _) = ControlNet::linear(6);
        assert_eq!(engine.critical_path(&net), 6);
        for _ in 0..5 {
            assert_eq!(engine.critical_path(&net), 6);
        }
        let s = engine.stats();
        assert_eq!((s.hits, s.misses), (5, 1));
        assert!(s.hit_rate() > 0.8);
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn structurally_equal_nets_share_an_entry() {
        let engine = CriticalPathEngine::new();
        let (a, _) = ControlNet::linear(4);
        let mut b = ControlNet::new();
        // Same structure, different labels.
        let ps: Vec<_> = (0..4).map(|i| b.add_place(format!("other{i}"))).collect();
        let done = b.add_place("the end");
        b.mark_final(done);
        b.mark_initial(ps[0]);
        for i in 0..4 {
            let next = if i + 1 < 4 { ps[i + 1] } else { done };
            b.add_transition([ps[i]], [next], None);
        }
        assert_eq!(a.structural_hash(), b.structural_hash());
        let _ = engine.critical_path(&a);
        let _ = engine.critical_path(&b);
        assert_eq!(engine.stats().hits, 1);
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn looped_and_branching_nets_match_reference() {
        let engine = CriticalPathEngine::new();
        let (mut net, steps) = ControlNet::linear(5);
        net.add_loop_back(&steps, ValueId::from_index(0));
        assert_eq!(engine.critical_path(&net), net.critical_path());
        assert_eq!(engine.critical_path(&net), 5);
    }

    #[test]
    fn fork_join_falls_back_to_reachability() {
        let engine = CriticalPathEngine::new();
        let mut net = ControlNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let p3 = net.add_place("p3");
        let pf = net.add_place("final");
        net.mark_initial(p0);
        net.mark_final(pf);
        net.add_transition([p0], [p1, p2], None);
        net.add_transition([p2], [p3], None);
        net.add_transition([p1, p3], [pf], None);
        assert_eq!(net.chain_critical_path(), None);
        assert_eq!(engine.critical_path(&net), net.critical_path());
        assert_eq!(engine.stats().full_reachability, 1);
    }

    #[test]
    fn delta_e_signs() {
        let engine = CriticalPathEngine::new();
        let (short, _) = ControlNet::linear(3);
        let (long, _) = ControlNet::linear(5);
        assert_eq!(engine.delta_e(&short, &long), 2);
        assert_eq!(engine.delta_e(&long, &short), -2);
        assert_eq!(engine.delta_e(&short, &short), 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let engine = CriticalPathEngine::new();
        let (net, _) = ControlNet::linear(2);
        let _ = engine.critical_path(&net);
        engine.clear();
        assert!(engine.is_empty());
        assert_eq!(engine.stats().misses, 1);
        let _ = engine.critical_path(&net);
        assert_eq!(engine.stats().misses, 2, "cleared entry recomputes");
    }
}
