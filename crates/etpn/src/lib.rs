//! # hlts-etpn — the Extended Timed Petri Net design representation
//!
//! The kernel of the `hlts` system, after Peng & Kuchcinski (TCAD 1994):
//! an intermediate design representation consisting of two related parts:
//!
//! * a **data path** ([`DataPath`]) — a directed graph whose nodes are
//!   registers, functional modules, ports and constants, and whose arcs
//!   are guarded data transfers;
//! * a **control part** ([`ControlNet`]) — a timed Petri net with
//!   restricted firing rules whose places enable the data-path transfers
//!   and whose transitions may be guarded by condition signals produced
//!   in the data path.
//!
//! [`Etpn::from_parts`] lowers a scheduled, allocated behavioral
//! description into this representation; [`ControlNet::critical_path`]
//! extracts the execution time `E` from the net's reachability tree — the
//! quantity the synthesis algorithm uses for its ΔE estimates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod critical_path;
mod data_path;
mod dot;
mod error;
mod petri;

pub use build::EtpnBuildError;
pub use critical_path::{CacheStats, CriticalPathEngine};
pub use data_path::{DataPath, DpArc, DpArcId, DpNode, DpNodeId, DpNodeKind};
pub use dot::{control_to_dot, data_path_to_dot};
pub use error::EtpnError;
pub use petri::{ControlNet, PlaceId, Reachability, TransitionId, TransitionView};

use hlts_alloc::Allocation;
use hlts_dfg::Dfg;
use hlts_sched::Schedule;

/// A complete ETPN design: data path plus control part.
#[derive(Debug, Clone)]
pub struct Etpn {
    data_path: DataPath,
    control: ControlNet,
}

impl Etpn {
    /// Lower a scheduled and allocated behavioral description into ETPN.
    ///
    /// See the crate's `build` module documentation for the lowering
    /// rules (one data-path node per physical resource; transfer arcs
    /// guarded by the control places of their steps).
    ///
    /// # Errors
    ///
    /// Returns [`EtpnBuildError`] if the schedule or allocation is
    /// inconsistent with the graph.
    pub fn from_parts(
        dfg: &Dfg,
        schedule: &Schedule,
        allocation: &Allocation,
    ) -> Result<Self, EtpnBuildError> {
        build::build(dfg, schedule, allocation)
    }

    /// The structural data path.
    #[must_use]
    pub fn data_path(&self) -> &DataPath {
        &self.data_path
    }

    /// The Petri-net control part.
    #[must_use]
    pub fn control(&self) -> &ControlNet {
        &self.control
    }

    /// Execution time `E`: the critical-path length of the control part,
    /// in control steps, extracted from the reachability tree. This is
    /// the from-scratch reference; the synthesis inner loop uses
    /// [`execution_time_with`] instead.
    ///
    /// [`execution_time_with`]: Etpn::execution_time_with
    #[must_use]
    pub fn execution_time(&self) -> usize {
        self.control.critical_path()
    }

    /// Execution time `E` via a shared [`CriticalPathEngine`]:
    /// memoized across structurally identical control parts and using
    /// the single-token shortcut where it applies. Result is identical
    /// to [`execution_time`](Etpn::execution_time).
    #[must_use]
    pub fn execution_time_with(&self, engine: &CriticalPathEngine) -> usize {
        engine.critical_path(&self.control)
    }

    pub(crate) fn new(data_path: DataPath, control: ControlNet) -> Self {
        Etpn { data_path, control }
    }
}
