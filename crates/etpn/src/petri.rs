//! The control half of the ETPN representation: a timed Petri net with
//! restricted firing rules.
//!
//! Places correspond to control states (one per control step plus a final
//! state); a place holding a token enables the data-path transfers guarded
//! by it. Transitions advance tokens between control states and may be
//! guarded by condition signals computed in the data path (loop exits,
//! branches).
//!
//! The minimum execution time `E` of a design "is equal to the length of
//! the critical path ... The method to detect the critical path is based
//! on the reachability tree of the Petri net model" (paper §4.2). This
//! module builds that reachability tree ([`Reachability`]) and extracts
//! the critical path from it ([`ControlNet::critical_path`]).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use hlts_dfg::ValueId;

/// Index of a place in a [`ControlNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) u32);

impl PlaceId {
    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        PlaceId(u32::try_from(index).expect("place index fits in u32"))
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a transition in a [`ControlNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(pub(crate) u32);

impl TransitionId {
    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        TransitionId(u32::try_from(index).expect("transition index fits in u32"))
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Exporter view of one transition: `(id, input places, output places,
/// optional condition guard)`.
pub type TransitionView = (
    TransitionId,
    Vec<PlaceId>,
    Vec<PlaceId>,
    Option<(ValueId, bool)>,
);

#[derive(Debug, Clone)]
struct Place {
    label: String,
}

#[derive(Debug, Clone)]
struct Transition {
    inputs: Vec<PlaceId>,
    outputs: Vec<PlaceId>,
    /// `Some((cond, polarity))`: fires only when the data-path condition
    /// signal has the given polarity. Reachability explores both branches.
    guard: Option<(ValueId, bool)>,
}

/// The control Petri net.
#[derive(Debug, Clone, Default)]
pub struct ControlNet {
    places: Vec<Place>,
    transitions: Vec<Transition>,
    initial: BTreeSet<PlaceId>,
    final_places: BTreeSet<PlaceId>,
}

impl ControlNet {
    /// An empty net.
    #[must_use]
    pub fn new() -> Self {
        ControlNet::default()
    }

    /// Add a place.
    pub fn add_place(&mut self, label: impl Into<String>) -> PlaceId {
        let id = PlaceId::from_index(self.places.len());
        self.places.push(Place {
            label: label.into(),
        });
        id
    }

    /// Add a transition moving tokens from `inputs` to `outputs`,
    /// optionally guarded by a data-path condition signal.
    pub fn add_transition(
        &mut self,
        inputs: impl IntoIterator<Item = PlaceId>,
        outputs: impl IntoIterator<Item = PlaceId>,
        guard: Option<(ValueId, bool)>,
    ) -> TransitionId {
        let id = TransitionId::from_index(self.transitions.len());
        self.transitions.push(Transition {
            inputs: inputs.into_iter().collect(),
            outputs: outputs.into_iter().collect(),
            guard,
        });
        id
    }

    /// Mark a place as initially holding a token.
    pub fn mark_initial(&mut self, p: PlaceId) {
        self.initial.insert(p);
    }

    /// Mark a place as a final (design-complete) state.
    pub fn mark_final(&mut self, p: PlaceId) {
        self.final_places.insert(p);
    }

    /// Number of places.
    #[must_use]
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Label of a place.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn place_label(&self, p: PlaceId) -> &str {
        &self.places[p.index()].label
    }

    /// The initial marking.
    #[must_use]
    pub fn initial_marking(&self) -> &BTreeSet<PlaceId> {
        &self.initial
    }

    /// The final places.
    #[must_use]
    pub fn final_places(&self) -> &BTreeSet<PlaceId> {
        &self.final_places
    }

    /// All place ids in creation order.
    #[must_use]
    pub fn place_ids(&self) -> Vec<PlaceId> {
        (0..self.places.len()).map(PlaceId::from_index).collect()
    }

    /// A read-only view of every transition: id, input places, output
    /// places and the optional condition guard. Used by exporters.
    #[must_use]
    pub fn transitions_view(&self) -> Vec<TransitionView> {
        self.transitions
            .iter()
            .enumerate()
            .map(|(i, t)| {
                (
                    TransitionId::from_index(i),
                    t.inputs.clone(),
                    t.outputs.clone(),
                    t.guard,
                )
            })
            .collect()
    }

    /// Whether a transition is enabled under `marking` (all input places
    /// marked). Guards are ignored here: reachability explores both
    /// polarities.
    fn enabled(&self, t: &Transition, marking: &BTreeSet<PlaceId>) -> bool {
        t.inputs.iter().all(|p| marking.contains(p))
    }

    fn fire(&self, t: &Transition, marking: &BTreeSet<PlaceId>) -> BTreeSet<PlaceId> {
        let mut m = marking.clone();
        for p in &t.inputs {
            m.remove(p);
        }
        for p in &t.outputs {
            m.insert(*p);
        }
        m
    }

    /// Build the reachability tree (as a reachability *graph*: revisited
    /// markings are shared) from the initial marking.
    ///
    /// Exploration fires every enabled transition from every marking,
    /// treating condition guards as free (both branches explored) — the
    /// restricted firing rule of ETPN makes control tokens advance
    /// deterministically within a branch, so the graph stays small.
    #[must_use]
    pub fn reachability(&self) -> Reachability {
        let mut markings: Vec<BTreeSet<PlaceId>> = Vec::new();
        let mut index: HashMap<BTreeSet<PlaceId>, usize> = HashMap::new();
        let mut edges: Vec<Vec<(TransitionId, usize)>> = Vec::new();
        let m0 = self.initial.clone();
        index.insert(m0.clone(), 0);
        markings.push(m0);
        edges.push(Vec::new());
        let mut head = 0;
        while head < markings.len() {
            let m = markings[head].clone();
            for (ti, t) in self.transitions.iter().enumerate() {
                if !self.enabled(t, &m) {
                    continue;
                }
                let m2 = self.fire(t, &m);
                let next = match index.get(&m2) {
                    Some(&i) => i,
                    None => {
                        let i = markings.len();
                        index.insert(m2.clone(), i);
                        markings.push(m2);
                        edges.push(Vec::new());
                        i
                    }
                };
                edges[head].push((TransitionId::from_index(ti), next));
            }
            head += 1;
            // Bound: safe nets over our control skeletons stay tiny; guard
            // against pathological inputs.
            if markings.len() > 100_000 {
                break;
            }
        }
        let final_markings: Vec<usize> = markings
            .iter()
            .enumerate()
            .filter(|(_, m)| m.iter().any(|p| self.final_places.contains(p)))
            .map(|(i, _)| i)
            .collect();
        Reachability {
            markings,
            edges,
            final_markings,
        }
    }

    /// The critical path: the largest number of transition firings (=
    /// control steps elapsed) on any *acyclic* token path from the
    /// initial marking to a final marking. Loop bodies therefore count
    /// once — the per-iteration execution time, which is what the ΔE
    /// estimate compares.
    ///
    /// This is the **from-scratch reference**: it always builds the full
    /// reachability tree. The synthesis inner loop goes through
    /// [`CriticalPathEngine`], which memoizes results by
    /// [`structural_hash`] and takes the single-token
    /// [`chain_critical_path`] shortcut when it applies; both are
    /// property-tested against this method.
    ///
    /// Returns 0 when no final marking is reachable.
    ///
    /// [`CriticalPathEngine`]: crate::CriticalPathEngine
    /// [`structural_hash`]: ControlNet::structural_hash
    /// [`chain_critical_path`]: ControlNet::chain_critical_path
    #[must_use]
    pub fn critical_path(&self) -> usize {
        let r = self.reachability();
        r.longest_path()
    }

    /// A 64-bit structural fingerprint of the net: transitions (input,
    /// output and guard structure), the initial marking and the final
    /// places. Place labels are excluded — they cannot affect token
    /// flow, so two nets differing only in labels share their critical
    /// path. Used as the memo key by [`CriticalPathEngine`].
    ///
    /// [`CriticalPathEngine`]: crate::CriticalPathEngine
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        // FNV-1a over a canonical byte walk of the structure.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.places.len() as u64);
        mix(self.transitions.len() as u64);
        for t in &self.transitions {
            mix(t.inputs.len() as u64);
            for p in &t.inputs {
                mix(u64::from(p.0));
            }
            mix(t.outputs.len() as u64);
            for p in &t.outputs {
                mix(u64::from(p.0));
            }
            match t.guard {
                None => mix(u64::MAX),
                Some((v, pol)) => {
                    mix(v.index() as u64);
                    mix(u64::from(pol));
                }
            }
        }
        mix(self.initial.len() as u64);
        for p in &self.initial {
            mix(u64::from(p.0));
        }
        mix(self.final_places.len() as u64);
        for p in &self.final_places {
            mix(u64::from(p.0));
        }
        h
    }

    /// Single-token fast path: when exactly one place is initially
    /// marked and every transition moves one token from one place to one
    /// place, every reachable marking is a singleton, so the
    /// reachability graph is isomorphic to the place graph — the
    /// critical path is the longest acyclic place walk from the initial
    /// place to a final place, computable in O(places + transitions)
    /// without materializing any marking sets.
    ///
    /// This covers every net the schedule lowering emits (linear step
    /// chains, conditional branches and guarded loop-backs are all
    /// 1-in/1-out). Fork/join nets (a transition with several inputs or
    /// outputs) return `None` and must use full reachability.
    #[must_use]
    pub fn chain_critical_path(&self) -> Option<usize> {
        if self.initial.len() != 1 {
            return None;
        }
        if self
            .transitions
            .iter()
            .any(|t| t.inputs.len() != 1 || t.outputs.len() != 1)
        {
            return None;
        }
        let n = self.places.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for t in &self.transitions {
            succ[t.inputs[0].index()].push(t.outputs[0].index());
        }
        let is_final: Vec<bool> = (0..n)
            .map(|i| self.final_places.contains(&PlaceId::from_index(i)))
            .collect();
        let start = self.initial.iter().next().expect("checked nonempty").index();
        let mut memo: Vec<Option<usize>> = vec![None; n];
        let mut on_stack = vec![false; n];
        Some(chain_dfs(start, &succ, &is_final, &mut memo, &mut on_stack).unwrap_or(0))
    }
}

/// Longest acyclic walk to a final place over the single-token place
/// graph; cycle-closing edges are skipped exactly as in
/// [`Reachability::longest_path`].
fn chain_dfs(
    node: usize,
    succ: &[Vec<usize>],
    is_final: &[bool],
    memo: &mut Vec<Option<usize>>,
    on_stack: &mut Vec<bool>,
) -> Option<usize> {
    if let Some(v) = memo[node] {
        return Some(v);
    }
    on_stack[node] = true;
    let mut best: Option<usize> = if is_final[node] { Some(0) } else { None };
    for &next in &succ[node] {
        if on_stack[next] {
            continue;
        }
        if let Some(d) = chain_dfs(next, succ, is_final, memo, on_stack) {
            best = Some(best.map_or(d + 1, |b| b.max(d + 1)));
        }
    }
    on_stack[node] = false;
    if let Some(b) = best {
        memo[node] = Some(b);
    }
    best
}

/// The reachability graph of a [`ControlNet`]: every marking reachable
/// from the initial marking, with firing edges.
#[derive(Debug, Clone)]
pub struct Reachability {
    markings: Vec<BTreeSet<PlaceId>>,
    edges: Vec<Vec<(TransitionId, usize)>>,
    final_markings: Vec<usize>,
}

impl Reachability {
    /// Number of distinct reachable markings.
    #[must_use]
    pub fn num_markings(&self) -> usize {
        self.markings.len()
    }

    /// Whether a final marking is reachable.
    #[must_use]
    pub fn reaches_final(&self) -> bool {
        !self.final_markings.is_empty()
    }

    /// The marking sets, index 0 = initial.
    #[must_use]
    pub fn markings(&self) -> &[BTreeSet<PlaceId>] {
        &self.markings
    }

    /// Longest acyclic firing path from the initial marking to any final
    /// marking (0 if unreachable).
    #[must_use]
    pub(crate) fn longest_path(&self) -> usize {
        if self.final_markings.is_empty() {
            return 0;
        }
        let is_final: Vec<bool> = {
            let mut v = vec![false; self.markings.len()];
            for &i in &self.final_markings {
                v[i] = true;
            }
            v
        };
        // DFS with an explicit stack computing the longest path that does
        // not revisit a marking on the current path (cycles skipped once).
        // Memoization is sound here because our control skeletons are
        // chains with optional loop-back edges: every cycle returns to a
        // marking whose longest path was computed from the same context.
        let mut memo: Vec<Option<usize>> = vec![None; self.markings.len()];
        let mut on_stack = vec![false; self.markings.len()];
        self.dfs(0, &is_final, &mut memo, &mut on_stack)
            .unwrap_or(0)
    }

    fn dfs(
        &self,
        node: usize,
        is_final: &[bool],
        memo: &mut Vec<Option<usize>>,
        on_stack: &mut Vec<bool>,
    ) -> Option<usize> {
        if let Some(v) = memo[node] {
            return Some(v);
        }
        on_stack[node] = true;
        let mut best: Option<usize> = if is_final[node] { Some(0) } else { None };
        for &(_, next) in &self.edges[node] {
            if on_stack[next] {
                continue; // skip cycle-closing edge
            }
            if let Some(d) = self.dfs(next, is_final, memo, on_stack) {
                best = Some(best.map_or(d + 1, |b| b.max(d + 1)));
            }
        }
        on_stack[node] = false;
        if let Some(b) = best {
            memo[node] = Some(b);
        }
        best
    }
}

/// Build the standard linear control skeleton for a schedule of
/// `num_steps` control steps: one place per step, a final place, and a
/// chain of transitions. Returns the net and the per-step places.
///
/// # Example
///
/// ```
/// let (net, steps) = hlts_etpn::ControlNet::linear(3);
/// assert_eq!(steps.len(), 3);
/// assert_eq!(net.critical_path(), 3);
/// ```
impl ControlNet {
    /// See the type-level example; `num_steps = 0` yields a net whose
    /// initial place is final (critical path 0).
    #[must_use]
    pub fn linear(num_steps: usize) -> (Self, Vec<PlaceId>) {
        let mut net = ControlNet::new();
        let mut steps = Vec::with_capacity(num_steps);
        for s in 0..num_steps {
            steps.push(net.add_place(format!("S{s}")));
        }
        let done = net.add_place("final");
        net.mark_final(done);
        if num_steps == 0 {
            net.mark_initial(done);
            return (net, steps);
        }
        net.mark_initial(steps[0]);
        for s in 0..num_steps {
            let next = if s + 1 < num_steps {
                steps[s + 1]
            } else {
                done
            };
            net.add_transition([steps[s]], [next], None);
        }
        (net, steps)
    }

    /// Add a loop-back from the last step place to the first, guarded by
    /// `cond` being true, and re-guard the exit transition with `cond`
    /// false — the control skeleton of a `while`-style behavior (e.g. the
    /// Diffeq benchmark's integration loop).
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn add_loop_back(&mut self, steps: &[PlaceId], cond: ValueId) {
        let last = *steps.last().expect("loop over at least one step");
        let first = steps[0];
        self.add_transition([last], [first], Some((cond, true)));
        // Re-guard the existing exit transition(s) out of `last`.
        for t in &mut self.transitions {
            if t.inputs == vec![last] && t.guard.is_none() {
                t.guard = Some((cond, false));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_critical_path_equals_steps() {
        for n in 0..6 {
            let (net, _) = ControlNet::linear(n);
            assert_eq!(net.critical_path(), n, "n={n}");
        }
    }

    #[test]
    fn reachability_of_linear_chain() {
        let (net, _) = ControlNet::linear(4);
        let r = net.reachability();
        // 4 step markings + final marking
        assert_eq!(r.num_markings(), 5);
        assert!(r.reaches_final());
    }

    #[test]
    fn loop_back_counts_one_iteration() {
        let (mut net, steps) = ControlNet::linear(4);
        net.add_loop_back(&steps, ValueId::from_index(0));
        // Cycle skipped: critical path is still one iteration = 4 steps.
        assert_eq!(net.critical_path(), 4);
        let r = net.reachability();
        assert!(r.reaches_final());
        assert_eq!(r.num_markings(), 5);
    }

    #[test]
    fn branch_takes_longer_arm() {
        // fork: p0 -> (p1 -> p2 -> final) or (p3 -> final)
        let mut net = ControlNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let p3 = net.add_place("p3");
        let pf = net.add_place("final");
        net.mark_initial(p0);
        net.mark_final(pf);
        let c = ValueId::from_index(0);
        net.add_transition([p0], [p1], Some((c, true)));
        net.add_transition([p0], [p3], Some((c, false)));
        net.add_transition([p1], [p2], None);
        net.add_transition([p2], [pf], None);
        net.add_transition([p3], [pf], None);
        assert_eq!(net.critical_path(), 3);
    }

    #[test]
    fn parallel_tokens_join() {
        // p0 forks to {p1, p2}; both must arrive to fire the join.
        let mut net = ControlNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let p3 = net.add_place("p3");
        let pf = net.add_place("final");
        net.mark_initial(p0);
        net.mark_final(pf);
        net.add_transition([p0], [p1, p2], None);
        net.add_transition([p2], [p3], None);
        net.add_transition([p1, p3], [pf], None);
        // longest: fork(1) + p2->p3(1) + join(1) = 3
        assert_eq!(net.critical_path(), 3);
        assert!(net.reachability().reaches_final());
    }

    #[test]
    fn unreachable_final_gives_zero() {
        let mut net = ControlNet::new();
        let p0 = net.add_place("p0");
        let pf = net.add_place("final");
        net.mark_initial(p0);
        net.mark_final(pf);
        // no transitions
        assert_eq!(net.critical_path(), 0);
        assert!(!net.reachability().reaches_final());
    }

    #[test]
    fn place_labels() {
        let (net, steps) = ControlNet::linear(2);
        assert_eq!(net.place_label(steps[0]), "S0");
        assert_eq!(net.place_label(steps[1]), "S1");
        assert_eq!(net.num_places(), 3);
        assert_eq!(net.num_transitions(), 2);
    }
}
