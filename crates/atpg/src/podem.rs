//! Deterministic test generation: PODEM over a time-frame-expanded
//! model.
//!
//! The sequential circuit is unrolled for a bounded number of time
//! frames starting from the reset state (all flip-flops 0). The target
//! fault is injected in every frame. PODEM assigns primary inputs
//! (per frame) guided by backtracing the current objective — first
//! fault activation, then propagation through the D-frontier — with
//! 3-valued (0/1/X) simulation of the good and faulty machines as the
//! implication engine, and a bounded number of backtracks.

use hlts_netlist::{GateId, GateKind, Netlist};

use crate::{Fault, FaultSite};

type V = Option<bool>;

/// Result of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found: per-frame primary-input assignments
    /// (unassigned inputs default to 0).
    Test(Vec<Vec<bool>>),
    /// The fault is untestable within the frame bound (no objective
    /// remained and every decision was exhausted).
    Untestable,
    /// The backtrack limit was hit.
    Aborted,
}

/// PODEM test generator for one netlist.
#[derive(Debug, Clone)]
pub struct Podem {
    nl: Netlist,
    order: Vec<GateId>,
    frames: usize,
    backtrack_limit: usize,
    backtracks_used: usize,
}

impl Podem {
    /// Create a generator unrolling `frames` time frames with the given
    /// backtrack limit.
    #[must_use]
    pub fn new(mut nl: Netlist, frames: usize, backtrack_limit: usize) -> Self {
        let order = nl.topo_levels();
        Podem {
            nl,
            order,
            frames: frames.max(1),
            backtrack_limit,
            backtracks_used: 0,
        }
    }

    /// Total backtracks consumed across all calls (effort metric).
    #[must_use]
    pub fn backtracks_used(&self) -> usize {
        self.backtracks_used
    }

    /// Attempt to generate a test for `fault` with all inputs free.
    pub fn generate(&mut self, fault: Fault) -> PodemOutcome {
        self.generate_seeded(fault, None)
    }

    /// Attempt to generate a test with some inputs pre-assigned
    /// (frame-major, `preset[frame][pi]`). Preset values are fixed — the
    /// search only decides the remaining inputs. Seeding the control
    /// inputs with the controller's one-hot stepping protocol shrinks
    /// the search space to the data inputs, mirroring a test plan that
    /// walks the schedule.
    pub fn generate_seeded(&mut self, fault: Fault, preset: Option<&[Vec<V>]>) -> PodemOutcome {
        let num_pis = self.nl.inputs().len();
        // PI assignments: frame-major.
        let mut assign: Vec<Vec<V>> = vec![vec![None; num_pis]; self.frames];
        if let Some(p) = preset {
            for (f, row) in p.iter().enumerate().take(self.frames) {
                for (i, &v) in row.iter().enumerate().take(num_pis) {
                    assign[f][i] = v;
                }
            }
        }
        // decision stack: (frame, pi, value, tried_both)
        let mut stack: Vec<(usize, usize, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            let state = self.imply(&assign, fault);
            if state.detected {
                self.backtracks_used += backtracks;
                let test = assign
                    .iter()
                    .map(|frame| frame.iter().map(|v| v.unwrap_or(false)).collect())
                    .collect();
                return PodemOutcome::Test(test);
            }
            let objective = self.objective(&state, fault);
            let advanced = match objective {
                Some((frame, signal, value)) => {
                    match self.backtrace(&state, &assign, frame, signal, value) {
                        Some((f, pi, v)) => {
                            assign[f][pi] = Some(v);
                            stack.push((f, pi, v, false));
                            true
                        }
                        None => false,
                    }
                }
                None => false,
            };
            if advanced {
                continue;
            }
            // conflict: backtrack
            loop {
                match stack.pop() {
                    None => {
                        self.backtracks_used += backtracks;
                        return if backtracks >= self.backtrack_limit {
                            PodemOutcome::Aborted
                        } else {
                            PodemOutcome::Untestable
                        };
                    }
                    Some((f, pi, v, tried_both)) => {
                        assign[f][pi] = None;
                        backtracks += 1;
                        if backtracks >= self.backtrack_limit {
                            self.backtracks_used += backtracks;
                            return PodemOutcome::Aborted;
                        }
                        if !tried_both {
                            assign[f][pi] = Some(!v);
                            stack.push((f, pi, !v, true));
                            break;
                        }
                    }
                }
            }
        }
    }

    /// 3-valued forward simulation of both machines across all frames.
    fn imply(&self, assign: &[Vec<V>], fault: Fault) -> Frames {
        let n = self.nl.num_gates();
        let mut good: Vec<Vec<V>> = vec![vec![None; n]; self.frames];
        let mut faulty: Vec<Vec<V>> = vec![vec![None; n]; self.frames];
        let mut detected = false;

        // previous frame's D values per machine
        let dffs = self.nl.dffs().to_vec();
        let mut prev_good_d: Vec<V> = vec![Some(false); dffs.len()];
        let mut prev_faulty_d: Vec<V> = vec![Some(false); dffs.len()];

        for t in 0..self.frames {
            // sources
            for (i, g) in self.nl.gates().iter().enumerate() {
                let v = match g.kind() {
                    GateKind::Const0 => Some(false),
                    GateKind::Const1 => Some(true),
                    _ => continue,
                };
                good[t][i] = v;
                faulty[t][i] = v;
            }
            for (pi_idx, &g) in self.nl.inputs().iter().enumerate() {
                good[t][g.index()] = assign[t][pi_idx];
                faulty[t][g.index()] = assign[t][pi_idx];
            }
            for (k, &q) in dffs.iter().enumerate() {
                good[t][q.index()] = prev_good_d[k];
                faulty[t][q.index()] = prev_faulty_d[k];
            }
            // output-site injection on source nets
            if let FaultSite::Output(g) = fault.site {
                let kind = self.nl.gates()[g.index()].kind();
                if matches!(
                    kind,
                    GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
                ) {
                    faulty[t][g.index()] = Some(fault.stuck);
                }
            }
            // combinational propagation
            for &g in &self.order {
                let gate = &self.nl.gates()[g.index()];
                let gv: Vec<V> = gate.inputs().iter().map(|&i| good[t][i.index()]).collect();
                good[t][g.index()] = eval3(gate.kind(), &gv);
                let mut fv: Vec<V> = gate
                    .inputs()
                    .iter()
                    .map(|&i| faulty[t][i.index()])
                    .collect();
                if let FaultSite::Input(fg, pin) = fault.site {
                    if fg == g {
                        fv[pin as usize] = Some(fault.stuck);
                    }
                }
                let mut out = eval3(gate.kind(), &fv);
                if fault.site == FaultSite::Output(g) {
                    out = Some(fault.stuck);
                }
                faulty[t][g.index()] = out;
            }
            // detection at primary outputs
            for (_, g) in self.nl.outputs() {
                if let (Some(a), Some(b)) = (good[t][g.index()], faulty[t][g.index()]) {
                    if a != b {
                        detected = true;
                    }
                }
            }
            // next-frame state with D-pin injection
            for (k, &q) in dffs.iter().enumerate() {
                let d = self.nl.gates()[q.index()].inputs()[0];
                prev_good_d[k] = good[t][d.index()];
                let mut fd = faulty[t][d.index()];
                if let FaultSite::Input(fg, 0) = fault.site {
                    if fg == q {
                        fd = Some(fault.stuck);
                    }
                }
                prev_faulty_d[k] = fd;
            }
        }
        Frames {
            good,
            faulty,
            detected,
        }
    }

    /// Current objective: activate first, then propagate.
    fn objective(&self, state: &Frames, fault: Fault) -> Option<(usize, GateId, bool)> {
        let site_net = |t: usize| -> (GateId, V) {
            match fault.site {
                FaultSite::Output(g) => (g, state.good[t][g.index()]),
                FaultSite::Input(g, pin) => {
                    let src = self.nl.gates()[g.index()].inputs()[pin as usize];
                    (src, state.good[t][src.index()])
                }
            }
        };
        // 1. activation: some frame where the site is X -> drive it to
        //    the non-stuck value.
        let mut activated = false;
        for t in 0..self.frames {
            let (g, v) = site_net(t);
            match v {
                None => return Some((t, g, !fault.stuck)),
                Some(x) if x != fault.stuck => activated = true,
                _ => {}
            }
        }
        if !activated {
            return None; // cannot activate under current assignments
        }
        // 2. propagation: D-frontier — a gate whose output is X while
        //    some input carries a good/faulty difference; objective: set
        //    an X side input to the non-controlling value.
        for t in 0..self.frames {
            for &g in &self.order {
                if state.good[t][g.index()].is_some() && state.faulty[t][g.index()].is_some() {
                    continue;
                }
                let gate = &self.nl.gates()[g.index()];
                let has_d = gate.inputs().iter().enumerate().any(|(pin, &i)| {
                    let gv = state.good[t][i.index()];
                    let mut fv = state.faulty[t][i.index()];
                    // an input-pin fault introduces the difference inside
                    // this very gate
                    if let FaultSite::Input(fg, fp) = fault.site {
                        if fg == g && usize::from(fp) == pin {
                            fv = Some(fault.stuck);
                        }
                    }
                    matches!((gv, fv), (Some(a), Some(b)) if a != b)
                });
                if !has_d {
                    continue;
                }
                for &i in gate.inputs() {
                    if state.good[t][i.index()].is_none() {
                        let v = non_controlling(gate.kind());
                        return Some((t, i, v));
                    }
                }
            }
        }
        None
    }

    /// Backtrace an objective to an unassigned primary input: depth-
    /// first search over X-valued inputs (trying every X fan-in, not
    /// just the first, so an assigned PI on one path does not abort the
    /// whole objective).
    fn backtrace(
        &self,
        state: &Frames,
        assign: &[Vec<V>],
        frame: usize,
        signal: GateId,
        value: bool,
    ) -> Option<(usize, usize, bool)> {
        let mut budget = self.nl.num_gates() * self.frames + 1;
        self.backtrace_dfs(state, assign, frame, signal, value, &mut budget)
    }

    fn backtrace_dfs(
        &self,
        state: &Frames,
        assign: &[Vec<V>],
        frame: usize,
        signal: GateId,
        value: bool,
        budget: &mut usize,
    ) -> Option<(usize, usize, bool)> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let gate = &self.nl.gates()[signal.index()];
        match gate.kind() {
            GateKind::Input => {
                let pi = self
                    .nl
                    .inputs()
                    .iter()
                    .position(|&g| g == signal)
                    .expect("input gate registered");
                if assign[frame][pi].is_none() {
                    Some((frame, pi, value))
                } else {
                    None
                }
            }
            GateKind::Dff => {
                if frame == 0 {
                    return None; // reset state is fixed
                }
                self.backtrace_dfs(state, assign, frame - 1, gate.inputs()[0], value, budget)
            }
            GateKind::Const0 | GateKind::Const1 => None,
            kind => {
                let v = backtrace_value(kind, value);
                for &i in gate.inputs() {
                    if state.good[frame][i.index()].is_none() {
                        if let Some(hit) = self.backtrace_dfs(state, assign, frame, i, v, budget) {
                            return Some(hit);
                        }
                    }
                }
                None
            }
        }
    }
}

struct Frames {
    good: Vec<Vec<V>>,
    faulty: Vec<Vec<V>>,
    detected: bool,
}

/// 3-valued gate evaluation.
fn eval3(kind: GateKind, ins: &[V]) -> V {
    match kind {
        GateKind::Buf => ins[0],
        GateKind::Not => ins[0].map(|v| !v),
        GateKind::And | GateKind::Nand => {
            let v = if ins.contains(&Some(false)) {
                Some(false)
            } else if ins.iter().all(|i| i.is_some()) {
                Some(true)
            } else {
                None
            };
            if matches!(kind, GateKind::Nand) {
                v.map(|x| !x)
            } else {
                v
            }
        }
        GateKind::Or | GateKind::Nor => {
            let v = if ins.contains(&Some(true)) {
                Some(true)
            } else if ins.iter().all(|i| i.is_some()) {
                Some(false)
            } else {
                None
            };
            if matches!(kind, GateKind::Nor) {
                v.map(|x| !x)
            } else {
                v
            }
        }
        GateKind::Xor => match (ins[0], ins[1]) {
            (Some(a), Some(b)) => Some(a ^ b),
            _ => None,
        },
        GateKind::Xnor => match (ins[0], ins[1]) {
            (Some(a), Some(b)) => Some(!(a ^ b)),
            _ => None,
        },
        GateKind::Mux => match ins[0] {
            Some(false) => ins[1],
            Some(true) => ins[2],
            None => match (ins[1], ins[2]) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
        },
        GateKind::Const0 => Some(false),
        GateKind::Const1 => Some(true),
        GateKind::Input | GateKind::Dff => None,
        // future kinds: unknown
        _ => None,
    }
}

/// Non-controlling input value of a gate kind (for propagation
/// objectives).
fn non_controlling(kind: GateKind) -> bool {
    match kind {
        GateKind::And | GateKind::Nand => true,
        GateKind::Or | GateKind::Nor => false,
        // XOR/MUX/INV have no controlling value; any binary side value
        // propagates — pick 0.
        _ => false,
    }
}

/// How a target value transforms when backtracing through a gate.
fn backtrace_value(kind: GateKind, value: bool) -> bool {
    match kind {
        GateKind::Nand | GateKind::Nor | GateKind::Not => !value,
        _ => value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Combinational AND: PODEM finds a test for every collapsed fault.
    #[test]
    fn podem_covers_and_gate() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.gate(GateKind::And, &[a, b]);
        nl.output("x", x);
        let universe = crate::FaultUniverse::collapsed(&nl);
        let mut podem = Podem::new(nl, 1, 100);
        for &f in universe.faults() {
            match podem.generate(f) {
                PodemOutcome::Test(_) => {}
                other => panic!("{}: {other:?}", f.describe()),
            }
        }
    }

    /// A sequential fault needs more than one frame.
    #[test]
    fn podem_unrolls_frames() {
        // q.next = q ^ en, observed at output; en sa0 requires two frames
        let mut nl = Netlist::new();
        let q = nl.dff("q");
        let en = nl.input("en");
        let d = nl.gate(GateKind::Xor, &[q, en]);
        nl.connect_dff(q, d);
        nl.output("q", q);
        let fault = Fault {
            site: FaultSite::Output(en),
            stuck: false,
        };
        let mut podem1 = Podem::new(nl.clone(), 1, 100);
        assert_ne!(
            podem1.generate(fault),
            PodemOutcome::Test(vec![vec![true]]),
            "one frame cannot observe the diverged state"
        );
        let mut podem2 = Podem::new(nl, 3, 100);
        match podem2.generate(fault) {
            PodemOutcome::Test(t) => {
                assert!(t.iter().any(|frame| frame[0]), "en must be raised");
            }
            other => panic!("{other:?}"),
        }
    }

    /// Generated tests actually detect the fault (cross-check with the
    /// fault simulator).
    #[test]
    fn podem_tests_verified_by_fault_simulation() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let q = nl.dff("r");
        let s = nl.gate(GateKind::Xor, &[a, b]);
        let d = nl.gate(GateKind::Or, &[s, q]);
        nl.connect_dff(q, d);
        nl.output("o", q);
        let universe = crate::FaultUniverse::collapsed(&nl);
        let mut podem = Podem::new(nl.clone(), 4, 200);
        let mut fs = crate::FaultSimulator::new(nl);
        let mut found = 0;
        for &f in universe.faults() {
            if let PodemOutcome::Test(t) = podem.generate(f) {
                let seq: Vec<Vec<u64>> = t
                    .iter()
                    .map(|frame| frame.iter().map(|&b| if b { !0u64 } else { 0 }).collect())
                    .collect();
                let trace = fs.good_trace(&seq);
                assert!(
                    fs.detects(&trace, &seq, f),
                    "PODEM test must detect {}",
                    f.describe()
                );
                found += 1;
            }
        }
        assert!(found > 0);
    }

    /// An untestable fault (redundant logic) is reported as such.
    #[test]
    fn redundant_fault_untestable() {
        // x = a & !a  is constant 0: sa0 on x is untestable
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let na = nl.gate(GateKind::Not, &[a]);
        let x = nl.gate(GateKind::And, &[a, na]);
        nl.output("x", x);
        let fault = Fault {
            site: FaultSite::Output(x),
            stuck: false,
        };
        let mut podem = Podem::new(nl, 1, 100);
        assert_eq!(podem.generate(fault), PodemOutcome::Untestable);
    }

    #[test]
    fn eval3_semantics() {
        use GateKind::*;
        assert_eq!(eval3(And, &[Some(false), None]), Some(false));
        assert_eq!(eval3(And, &[Some(true), None]), None);
        assert_eq!(eval3(Or, &[Some(true), None]), Some(true));
        assert_eq!(eval3(Xor, &[Some(true), None]), None);
        assert_eq!(eval3(Mux, &[None, Some(true), Some(true)]), Some(true));
        assert_eq!(eval3(Mux, &[None, Some(true), Some(false)]), None);
        assert_eq!(eval3(Nand, &[Some(false), None]), Some(true));
    }
}
