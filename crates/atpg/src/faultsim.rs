//! Serial-fault, parallel-pattern fault simulation with fault dropping.

use hlts_netlist::{GateKind, Netlist};

use crate::{Fault, FaultSite, Simulator};

/// One clock cycle's primary-input assignment: a 64-pattern word per
/// primary input, in the netlist's input order.
pub type PiAssign = Vec<u64>;

/// The recorded good-machine behavior of a test sequence.
#[derive(Debug, Clone)]
pub struct GoodTrace {
    /// Per cycle: value of every net after settling.
    values: Vec<Vec<u64>>,
    /// Per cycle: flip-flop state *before* the cycle's clock edge.
    states: Vec<Vec<u64>>,
    /// Per cycle: primary-output values.
    outputs: Vec<Vec<u64>>,
}

/// A serial-fault, 64-pattern-parallel fault simulator.
///
/// For each fault the faulty machine is re-simulated with the fault
/// injected, starting at the first cycle in which the fault site is
/// activated (before activation the faulty machine coincides with the
/// recorded good machine). A fault is *detected* when any primary
/// output differs from the good machine in any pattern of any cycle.
#[derive(Debug, Clone)]
pub struct FaultSimulator {
    sim: Simulator,
}

impl FaultSimulator {
    /// Wrap a netlist.
    #[must_use]
    pub fn new(nl: Netlist) -> Self {
        FaultSimulator {
            sim: Simulator::new(nl),
        }
    }

    /// The wrapped netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.sim.netlist()
    }

    /// Simulate the good machine over `seq` from reset, recording every
    /// net value per cycle.
    #[must_use]
    pub fn good_trace(&mut self, seq: &[PiAssign]) -> GoodTrace {
        self.sim.reset();
        let mut trace = GoodTrace {
            values: Vec::with_capacity(seq.len()),
            states: Vec::with_capacity(seq.len()),
            outputs: Vec::with_capacity(seq.len()),
        };
        for assign in seq {
            for (i, &v) in assign.iter().enumerate() {
                self.sim.set_input(i, v);
            }
            trace.states.push(self.sim.state().to_vec());
            self.sim.clock();
            trace.values.push(self.sim.values_snapshot());
            trace
                .outputs
                .push(self.outputs_from(trace.values.last().expect("pushed")));
        }
        trace
    }

    fn outputs_from(&self, values: &[u64]) -> Vec<u64> {
        self.sim
            .netlist()
            .outputs()
            .iter()
            .map(|(_, g)| values[g.index()])
            .collect()
    }

    /// Good value of the fault site in a recorded cycle.
    fn site_value(&self, values: &[u64], fault: Fault) -> u64 {
        match fault.site {
            FaultSite::Output(g) => values[g.index()],
            FaultSite::Input(g, pin) => {
                let src = self.sim.netlist().gates()[g.index()].inputs()[pin as usize];
                values[src.index()]
            }
        }
    }

    /// Whether `seq` (with its recorded `trace`) detects `fault`.
    #[must_use]
    pub fn detects(&self, trace: &GoodTrace, seq: &[PiAssign], fault: Fault) -> bool {
        let stuck = if fault.stuck { !0u64 } else { 0u64 };
        // First cycle in which the site carries a value different from
        // the stuck value — before that the machines coincide.
        let Some(first_active) =
            (0..seq.len()).find(|&c| self.site_value(&trace.values[c], fault) != stuck)
        else {
            return false;
        };
        let nl = self.sim.netlist();
        let n = nl.num_gates();
        let mut values = vec![0u64; n];
        let mut state = trace.states[first_active].clone();
        for (cycle, cycle_assign) in seq.iter().enumerate().skip(first_active) {
            // sources
            for (i, g) in nl.gates().iter().enumerate() {
                match g.kind() {
                    GateKind::Const1 => values[i] = !0,
                    GateKind::Const0 => values[i] = 0,
                    _ => {}
                }
            }
            for (i, &v) in cycle_assign.iter().enumerate() {
                values[nl.inputs()[i].index()] = v;
            }
            for (i, &q) in nl.dffs().iter().enumerate() {
                values[q.index()] = state[i];
            }
            // output faults on source nets inject immediately
            if let FaultSite::Output(g) = fault.site {
                let kind = nl.gates()[g.index()].kind();
                if matches!(
                    kind,
                    GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
                ) {
                    values[g.index()] = stuck;
                }
            }
            // combinational evaluation with injection
            for &g in self.sim.order() {
                let gate = &nl.gates()[g.index()];
                let mut ins: Vec<u64> = gate.inputs().iter().map(|&i| values[i.index()]).collect();
                if let FaultSite::Input(fg, pin) = fault.site {
                    if fg == g {
                        ins[pin as usize] = stuck;
                    }
                }
                let mut v = gate.kind().eval(&ins);
                if fault.site == FaultSite::Output(g) {
                    v = stuck;
                }
                values[g.index()] = v;
            }
            // compare primary outputs
            let good = &trace.outputs[cycle];
            let differs = nl
                .outputs()
                .iter()
                .zip(good)
                .any(|((_, g), &gv)| values[g.index()] != gv);
            if differs {
                return true;
            }
            // latch (with D-pin injection)
            for (i, &q) in nl.dffs().iter().enumerate() {
                let gate = &nl.gates()[q.index()];
                let d = gate.inputs()[0];
                let mut v = values[d.index()];
                if let FaultSite::Input(fg, 0) = fault.site {
                    if fg == q {
                        v = stuck;
                    }
                }
                state[i] = v;
            }
        }
        false
    }

    /// Fault-simulate `seq` against `faults`; `detected[i]` is updated
    /// to `true` for each newly detected fault (already-true entries are
    /// skipped — fault dropping). Returns how many new detections
    /// occurred.
    pub fn run(&mut self, seq: &[PiAssign], faults: &[Fault], detected: &mut [bool]) -> usize {
        let trace = self.good_trace(seq);
        let mut newly = 0;
        for (i, &f) in faults.iter().enumerate() {
            if detected[i] {
                continue;
            }
            if self.detects(&trace, seq, f) {
                detected[i] = true;
                newly += 1;
            }
        }
        newly
    }
}

impl Simulator {
    pub(crate) fn values_snapshot(&self) -> Vec<u64> {
        (0..self.netlist().num_gates())
            .map(|i| self.value(hlts_netlist::GateId::from_index(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultUniverse;

    /// Combinational AND with both inputs driven: every collapsed fault
    /// is detectable by exhaustive patterns.
    #[test]
    fn exhaustive_patterns_detect_all_and_faults() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.gate(GateKind::And, &[a, b]);
        nl.output("x", x);
        let universe = FaultUniverse::collapsed(&nl);
        let mut fs = FaultSimulator::new(nl);
        // patterns: bit0 = (0,0), bit1 = (0,1), bit2 = (1,0), bit3 = (1,1)
        let seq = vec![vec![0b1100u64, 0b1010u64]];
        let mut det = vec![false; universe.len()];
        let n = fs.run(&seq, universe.faults(), &mut det);
        assert_eq!(n, universe.len(), "{det:?}");
    }

    /// A fault on state-feedback logic needs multiple cycles.
    #[test]
    fn sequential_fault_needs_cycles() {
        // toggle flop observed at output; en stuck-at-0 stops toggling
        let mut nl = Netlist::new();
        let q = nl.dff("q");
        let en = nl.input("en");
        let d = nl.gate(GateKind::Xor, &[q, en]);
        nl.connect_dff(q, d);
        nl.output("q", q);
        let fault = Fault {
            site: FaultSite::Output(en),
            stuck: false,
        };
        let mut fs = FaultSimulator::new(nl);
        // one cycle with en=1: output still reads pre-clock q (0 both) —
        // not detected; after the clock the states diverge.
        let seq1 = vec![vec![1u64]];
        let trace1 = fs.good_trace(&seq1);
        assert!(!fs.detects(&trace1, &seq1, fault));
        // two cycles: second cycle observes the diverged state.
        let seq2 = vec![vec![1u64], vec![0u64]];
        let trace2 = fs.good_trace(&seq2);
        assert!(fs.detects(&trace2, &seq2, fault));
    }

    #[test]
    fn undetectable_without_activation() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.gate(GateKind::And, &[a, b]);
        nl.output("x", x);
        let fault = Fault {
            site: FaultSite::Output(x),
            stuck: false,
        };
        let mut fs = FaultSimulator::new(nl);
        // output is 0 anyway: sa0 never activated
        let seq = vec![vec![0u64, !0u64]];
        let trace = fs.good_trace(&seq);
        assert!(!fs.detects(&trace, &seq, fault));
    }

    #[test]
    fn fault_dropping_skips_detected() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let x = nl.gate(GateKind::Not, &[a]);
        nl.output("x", x);
        let universe = FaultUniverse::collapsed(&nl);
        let mut fs = FaultSimulator::new(nl);
        let seq = vec![vec![0b01u64]];
        let mut det = vec![false; universe.len()];
        let first = fs.run(&seq, universe.faults(), &mut det);
        let second = fs.run(&seq, universe.faults(), &mut det);
        assert!(first > 0);
        assert_eq!(second, 0, "already-detected faults are dropped");
    }
}
