//! The single stuck-at fault universe with equivalence collapsing.

use hlts_netlist::{GateId, GateKind, Netlist};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Where a fault sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// The output net of a gate.
    Output(GateId),
    /// A specific input pin of a gate (gate, pin index).
    Input(GateId, u8),
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Location.
    pub site: FaultSite,
    /// Stuck value: `true` = stuck-at-1.
    pub stuck: bool,
}

impl Fault {
    /// Short display form, e.g. `g12/1 sa0`.
    #[must_use]
    pub fn describe(&self) -> String {
        match self.site {
            FaultSite::Output(g) => format!("{g} sa{}", u8::from(self.stuck)),
            FaultSite::Input(g, p) => format!("{g}.{p} sa{}", u8::from(self.stuck)),
        }
    }
}

/// The collapsed fault list of a netlist.
#[derive(Debug, Clone)]
pub struct FaultUniverse {
    faults: Vec<Fault>,
    total_uncollapsed: usize,
}

impl FaultUniverse {
    /// Enumerate all stuck-at faults on gate outputs and gate input
    /// pins, then collapse gate-local structural equivalences:
    ///
    /// * AND: any input sa0 ≡ output sa0; NAND: input sa0 ≡ output sa1;
    /// * OR: any input sa1 ≡ output sa1; NOR: input sa1 ≡ output sa0;
    /// * BUF/NOT and single-input pins: input faults ≡ output faults.
    ///
    /// (Classic equivalence collapsing; dominance collapsing is not
    /// applied.) Sources (inputs, constants, flip-flop outputs) carry
    /// output faults only; constant outputs keep only the fault opposed
    /// to their value.
    #[must_use]
    pub fn collapsed(nl: &Netlist) -> Self {
        let mut faults = Vec::new();
        let mut total = 0usize;
        for (i, gate) in nl.gates().iter().enumerate() {
            let g = GateId::from_index(i);
            let (out0, out1) = match gate.kind() {
                GateKind::Const0 => (false, true), // only sa1 meaningful
                GateKind::Const1 => (true, false), // only sa0 meaningful
                _ => (true, true),
            };
            total += 2 + 2 * gate.inputs().len();
            if out0 {
                faults.push(Fault {
                    site: FaultSite::Output(g),
                    stuck: false,
                });
            }
            if out1 {
                faults.push(Fault {
                    site: FaultSite::Output(g),
                    stuck: true,
                });
            }
            for pin in 0..gate.inputs().len() {
                let pin8 = u8::try_from(pin).expect("pin fits u8");
                for stuck in [false, true] {
                    if equivalent_to_output(gate.kind(), stuck) {
                        continue;
                    }
                    faults.push(Fault {
                        site: FaultSite::Input(g, pin8),
                        stuck,
                    });
                }
            }
        }
        FaultUniverse {
            faults,
            total_uncollapsed: total,
        }
    }

    /// Randomly sample the universe down to at most `n` faults
    /// (deterministic for a given seed). Coverage percentages computed
    /// over a sample estimate the full-universe coverage — the standard
    /// practice for large fault lists.
    #[must_use]
    pub fn sampled(mut self, n: usize, seed: u64) -> Self {
        if self.faults.len() > n {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            self.faults.shuffle(&mut rng);
            self.faults.truncate(n);
            self.faults.sort();
        }
        self
    }

    /// The collapsed (possibly sampled) fault list.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of faults before collapsing.
    #[must_use]
    pub fn total_uncollapsed(&self) -> usize {
        self.total_uncollapsed
    }

    /// Number of faults in the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Whether an input-pin fault of this kind/polarity is equivalent to an
/// output fault (and therefore dropped).
fn equivalent_to_output(kind: GateKind, stuck: bool) -> bool {
    match kind {
        GateKind::And | GateKind::Nand => !stuck, // input sa0
        GateKind::Or | GateKind::Nor => stuck,    // input sa1
        GateKind::Buf | GateKind::Not => true,    // both polarities
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_gate_collapse() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let _x = nl.gate(GateKind::And, &[a, b]);
        let u = FaultUniverse::collapsed(&nl);
        // a: 2 output faults; b: 2; AND: 2 output + (2 inputs × sa1 only)
        assert_eq!(u.len(), 2 + 2 + 2 + 2);
        assert!(u.total_uncollapsed() > u.len());
        // no input-sa0 faults on the AND
        assert!(!u
            .faults()
            .iter()
            .any(|f| matches!(f.site, FaultSite::Input(_, _)) && !f.stuck));
    }

    #[test]
    fn inverter_keeps_output_faults_only() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let x = nl.gate(GateKind::Not, &[a]);
        let u = FaultUniverse::collapsed(&nl);
        let on_not: Vec<&Fault> = u
            .faults()
            .iter()
            .filter(|f| {
                matches!(f.site, FaultSite::Output(g) if g == x)
                    || matches!(f.site, FaultSite::Input(g, _) if g == x)
            })
            .collect();
        assert_eq!(on_not.len(), 2);
        assert!(on_not
            .iter()
            .all(|f| matches!(f.site, FaultSite::Output(_))));
    }

    #[test]
    fn constants_have_single_polarity() {
        let mut nl = Netlist::new();
        let c = nl.constant(false);
        let u = FaultUniverse::collapsed(&nl);
        let on_c: Vec<&Fault> = u
            .faults()
            .iter()
            .filter(|f| matches!(f.site, FaultSite::Output(g) if g == c))
            .collect();
        assert_eq!(on_c.len(), 1);
        assert!(on_c[0].stuck, "only sa1 matters on a constant 0");
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let mut x = nl.gate(GateKind::And, &[a, b]);
        for _ in 0..20 {
            x = nl.gate(GateKind::Xor, &[x, a]);
        }
        let u1 = FaultUniverse::collapsed(&nl).sampled(10, 42);
        let u2 = FaultUniverse::collapsed(&nl).sampled(10, 42);
        assert_eq!(u1.faults(), u2.faults());
        assert_eq!(u1.len(), 10);
    }

    #[test]
    fn describe_is_readable() {
        let f = Fault {
            site: FaultSite::Input(GateId::from_index(3), 1),
            stuck: true,
        };
        assert_eq!(f.describe(), "g3.1 sa1");
    }
}
