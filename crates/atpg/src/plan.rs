//! The two-phase (random then deterministic) test-generation
//! orchestrator.

use std::time::{Duration, Instant};

use hlts_netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FaultSimulator, FaultUniverse, Podem, PodemOutcome};

/// Configuration of a [`TestGenerator`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgConfig {
    /// RNG seed (runs are deterministic for a given seed).
    pub seed: u64,
    /// Number of 64-pattern random sequences to simulate.
    pub random_sequences: usize,
    /// Clock cycles per random sequence.
    pub sequence_cycles: usize,
    /// Fraction of random sequences that drive the control inputs as a
    /// rotating one-hot (the schedule protocol); the rest drive fully
    /// random control — both mixes matter for data paths whose muxes
    /// and enables are schedule-driven.
    pub protocol_fraction: f64,
    /// Time frames for the deterministic (PODEM) phase.
    pub frames: usize,
    /// Backtrack limit per deterministic target.
    pub backtrack_limit: usize,
    /// Cap on deterministic targets (remaining faults stay undetected).
    pub max_deterministic_targets: usize,
    /// Optional fault-sampling cap (standard practice for large fault
    /// lists; coverage is then a sample estimate).
    pub fault_sample: Option<usize>,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            seed: 0x1998_0223,
            random_sequences: 24,
            sequence_cycles: 12,
            // the controller steps through its states even under a test
            // plan, so random vectors default to the one-hot protocol
            protocol_fraction: 1.0,
            frames: 6,
            backtrack_limit: 100,
            max_deterministic_targets: 200,
            fault_sample: None,
        }
    }
}

/// The result of a test-generation run — the paper's fault coverage /
/// test-generation time / test-generated-cycles columns.
#[derive(Debug, Clone, PartialEq)]
pub struct TestReport {
    /// Collapsed (possibly sampled) fault count.
    pub total_faults: usize,
    /// Faults detected by the random phase.
    pub detected_random: usize,
    /// Faults detected by the deterministic phase.
    pub detected_deterministic: usize,
    /// Faults proven untestable within the frame bound.
    pub untestable: usize,
    /// Deterministic targets aborted at the backtrack limit.
    pub aborted: usize,
    /// Clock cycles of the kept test set (random sequences that
    /// detected something, plus deterministic tests).
    pub test_cycles: usize,
    /// Total PODEM backtracks (deterministic effort).
    pub backtracks: usize,
    /// Random patterns simulated (sequences × cycles × 64).
    pub random_patterns: usize,
    /// Wall-clock test-generation time.
    pub wall: Duration,
}

impl TestReport {
    /// Fault coverage in percent: detected / total.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 100.0;
        }
        100.0 * (self.detected_random + self.detected_deterministic) as f64
            / self.total_faults as f64
    }

    /// Fault efficiency in percent: detected / (total − untestable).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        let testable = self.total_faults.saturating_sub(self.untestable);
        if testable == 0 {
            return 100.0;
        }
        100.0 * (self.detected_random + self.detected_deterministic) as f64 / testable as f64
    }

    /// A normalized test-generation effort figure: random patterns plus
    /// a weighted backtrack count (the unit the tables report as "test
    /// generation time" alongside wall-clock).
    #[must_use]
    pub fn effort(&self) -> f64 {
        self.random_patterns as f64 / 1000.0 + self.backtracks as f64
    }
}

/// The two-phase test generator.
#[derive(Debug, Clone)]
pub struct TestGenerator {
    cfg: AtpgConfig,
}

impl TestGenerator {
    /// Create a generator with the given configuration.
    #[must_use]
    pub fn new(cfg: AtpgConfig) -> Self {
        TestGenerator { cfg }
    }

    /// Run both phases on `nl`.
    #[must_use]
    pub fn run(&self, nl: &Netlist) -> TestReport {
        let start = Instant::now();
        let mut universe = FaultUniverse::collapsed(nl);
        if let Some(n) = self.cfg.fault_sample {
            universe = universe.sampled(n, self.cfg.seed);
        }
        let faults = universe.faults().to_vec();
        let mut detected = vec![false; faults.len()];
        let mut fs = FaultSimulator::new(nl.clone());
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        // Which inputs are control inputs (named ctrl_* by elaboration).
        // Protocol order: the setup state ("ctrl_final") first, then the
        // step states in order — one controller walk per rotation.
        let mut ctrl_idx: Vec<usize> = nl
            .inputs()
            .iter()
            .enumerate()
            .filter(|(_, &g)| nl.name(g).is_some_and(|n| n.starts_with("ctrl_")))
            .map(|(i, _)| i)
            .collect();
        if let Some(pos) = ctrl_idx
            .iter()
            .position(|&i| nl.name(nl.inputs()[i]) == Some("ctrl_final"))
        {
            let f = ctrl_idx.remove(pos);
            ctrl_idx.insert(0, f);
        }

        let mut test_cycles = 0usize;
        let mut detected_random = 0usize;
        for s in 0..self.cfg.random_sequences {
            let protocol =
                (s as f64) < self.cfg.protocol_fraction * self.cfg.random_sequences as f64;
            let seq: Vec<Vec<u64>> = (0..self.cfg.sequence_cycles)
                .map(|cycle| {
                    (0..nl.inputs().len())
                        .map(|i| {
                            if let Some(pos) = ctrl_idx.iter().position(|&c| c == i) {
                                if protocol {
                                    // rotating one-hot over the control states
                                    if cycle % ctrl_idx.len().max(1) == pos {
                                        !0u64
                                    } else {
                                        0
                                    }
                                } else {
                                    rng.gen::<u64>()
                                }
                            } else {
                                rng.gen::<u64>()
                            }
                        })
                        .collect()
                })
                .collect();
            let newly = fs.run(&seq, &faults, &mut detected);
            if newly > 0 {
                detected_random += newly;
                test_cycles += self.cfg.sequence_cycles;
            }
        }

        // Deterministic phase: control inputs follow the controller's
        // one-hot walk (the test plan steps the schedule); PODEM decides
        // the data inputs. Activation may need a specific alignment of
        // the walk against the reset state, so up to three phase-shifted
        // walks are tried per fault before giving up.
        let mut podem = Podem::new(nl.clone(), self.cfg.frames, self.cfg.backtrack_limit);
        let walk_len = ctrl_idx.len().max(1);
        let preset_with_phase = |phase: usize| -> Vec<Vec<Option<bool>>> {
            (0..self.cfg.frames)
                .map(|f| {
                    (0..nl.inputs().len())
                        .map(|i| {
                            ctrl_idx
                                .iter()
                                .position(|&c| c == i)
                                .map(|pos| !ctrl_idx.is_empty() && (f + phase) % walk_len == pos)
                        })
                        .collect()
                })
                .collect()
        };
        let phases: Vec<Vec<Vec<Option<bool>>>> =
            (0..walk_len.min(3)).map(preset_with_phase).collect();
        let mut detected_deterministic = 0usize;
        let mut untestable = 0usize;
        let mut aborted = 0usize;
        let mut targets = 0usize;
        for i in 0..faults.len() {
            if detected[i] {
                continue;
            }
            if targets >= self.cfg.max_deterministic_targets {
                break;
            }
            targets += 1;
            let mut all_untestable = true;
            let mut hit = false;
            for preset in &phases {
                match podem.generate_seeded(faults[i], Some(preset)) {
                    PodemOutcome::Test(t) => {
                        all_untestable = false;
                        let seq: Vec<Vec<u64>> = t
                            .iter()
                            .map(|frame| frame.iter().map(|&b| if b { !0u64 } else { 0 }).collect())
                            .collect();
                        // the new test may catch other pending faults too
                        let newly = fs.run(&seq, &faults, &mut detected);
                        if newly > 0 {
                            detected_deterministic += newly;
                            test_cycles += seq.len();
                        }
                        if detected[i] {
                            hit = true;
                            break;
                        }
                    }
                    PodemOutcome::Untestable => {}
                    PodemOutcome::Aborted => all_untestable = false,
                }
            }
            if !hit {
                if all_untestable && ctrl_idx.is_empty() {
                    // with free inputs, exhaustion proves untestability
                    // within the frame bound
                    untestable += 1;
                } else {
                    aborted += 1;
                }
            }
        }

        TestReport {
            total_faults: faults.len(),
            detected_random,
            detected_deterministic,
            untestable,
            aborted,
            test_cycles,
            backtracks: podem.backtracks_used(),
            random_patterns: self.cfg.random_sequences * self.cfg.sequence_cycles * 64,
            wall: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_netlist::GateKind;

    fn small_sequential() -> Netlist {
        // accumulator: r.next = r + a (2 bits), observed
        let mut nl = Netlist::new();
        let a0 = nl.input("a[0]");
        let a1 = nl.input("a[1]");
        let q0 = nl.dff("r[0]");
        let q1 = nl.dff("r[1]");
        let s0 = nl.gate(GateKind::Xor, &[q0, a0]);
        let c0 = nl.gate(GateKind::And, &[q0, a0]);
        let t1 = nl.gate(GateKind::Xor, &[q1, a1]);
        let s1 = nl.gate(GateKind::Xor, &[t1, c0]);
        nl.connect_dff(q0, s0);
        nl.connect_dff(q1, s1);
        nl.output("r[0]", q0);
        nl.output("r[1]", q1);
        nl
    }

    #[test]
    fn two_phase_run_reports_consistent_numbers() {
        let nl = small_sequential();
        let cfg = AtpgConfig {
            random_sequences: 8,
            sequence_cycles: 6,
            ..AtpgConfig::default()
        };
        let r = TestGenerator::new(cfg).run(&nl);
        assert!(r.total_faults > 0);
        assert!(r.coverage() > 50.0, "coverage {:.1}", r.coverage());
        assert!(r.coverage() <= 100.0);
        assert!(r.efficiency() >= r.coverage());
        assert!(
            r.detected_random + r.detected_deterministic + r.untestable + r.aborted
                <= r.total_faults + r.aborted
        );
        assert!(r.test_cycles > 0);
    }

    #[test]
    fn deterministic_phase_adds_coverage() {
        let nl = small_sequential();
        // starve the random phase so PODEM has work
        let no_random = AtpgConfig {
            random_sequences: 0,
            ..AtpgConfig::default()
        };
        let r = TestGenerator::new(no_random).run(&nl);
        assert_eq!(r.detected_random, 0);
        assert!(
            r.detected_deterministic > 0,
            "PODEM should detect something: {r:?}"
        );
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let nl = small_sequential();
        let cfg = AtpgConfig {
            random_sequences: 4,
            sequence_cycles: 4,
            ..AtpgConfig::default()
        };
        let a = TestGenerator::new(cfg.clone()).run(&nl);
        let b = TestGenerator::new(cfg).run(&nl);
        assert_eq!(a.detected_random, b.detected_random);
        assert_eq!(a.detected_deterministic, b.detected_deterministic);
        assert_eq!(a.test_cycles, b.test_cycles);
    }

    #[test]
    fn sampling_caps_fault_count() {
        let nl = small_sequential();
        let cfg = AtpgConfig {
            fault_sample: Some(5),
            random_sequences: 2,
            sequence_cycles: 4,
            ..AtpgConfig::default()
        };
        let r = TestGenerator::new(cfg).run(&nl);
        assert_eq!(r.total_faults, 5);
    }
}
