//! # hlts-atpg — stuck-at test generation over gate netlists
//!
//! The test substrate behind the paper's fault-coverage / test-
//! generation-time / test-cycle columns. The paper's testability metric
//! "assumes that a stuck-at fault model is used and ATPG is random
//! and/or deterministic ... many ATPG's start by using random test
//! generation to cover as many faults as possible and then switch to
//! deterministic test generation" (§2) — exactly the two-phase flow
//! implemented here:
//!
//! * [`Simulator`] — levelized, 64-pattern-parallel cycle simulation;
//! * [`FaultUniverse`] — single stuck-at faults on gate outputs and
//!   inputs, with structural equivalence collapsing and optional
//!   sampling;
//! * [`FaultSimulator`] — serial-fault, parallel-pattern fault
//!   simulation with fault dropping;
//! * [`Podem`] — deterministic PODEM over a time-frame-expanded model
//!   (reset state, bounded frames, bounded backtracks);
//! * [`TestGenerator`] — the two-phase orchestrator producing a
//!   [`TestReport`] (fault coverage, test-generation effort, applied
//!   test cycles).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
mod faultsim;
mod plan;
mod podem;
mod sim;

pub use faults::{Fault, FaultSite, FaultUniverse};
pub use faultsim::{FaultSimulator, GoodTrace, PiAssign};
pub use plan::{AtpgConfig, TestGenerator, TestReport};
pub use podem::{Podem, PodemOutcome};
pub use sim::Simulator;
