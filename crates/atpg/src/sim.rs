//! Levelized 64-pattern-parallel cycle simulation.

use hlts_netlist::{GateId, GateKind, Netlist};

/// A two-valued, 64-pattern-parallel simulator for a [`Netlist`].
///
/// Bit `i` of every `u64` value carries pattern `i`. Flip-flops reset
/// to 0.
///
/// # Example
///
/// ```
/// use hlts_netlist::{GateKind, Netlist};
/// use hlts_atpg::Simulator;
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let x = nl.gate(GateKind::And, &[a, b]);
/// nl.output("x", x);
/// let mut sim = Simulator::new(nl);
/// sim.set_input(0, 0b11);
/// sim.set_input(1, 0b10);
/// sim.settle();
/// assert_eq!(sim.outputs()[0] & 0b11, 0b10);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    nl: Netlist,
    order: Vec<GateId>,
    values: Vec<u64>,
    state: Vec<u64>,
}

impl Simulator {
    /// Wrap a netlist (computes the levelization once).
    #[must_use]
    pub fn new(mut nl: Netlist) -> Self {
        let order = nl.topo_levels();
        let n = nl.num_gates();
        let mut sim = Simulator {
            nl,
            order,
            values: vec![0u64; n],
            state: Vec::new(),
        };
        sim.state = vec![0u64; sim.nl.dffs().len()];
        sim.reset();
        sim
    }

    /// The underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Reset all flip-flops to 0 and clear values.
    pub fn reset(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0);
        self.state.iter_mut().for_each(|v| *v = 0);
        for (i, g) in self.nl.gates().iter().enumerate() {
            if matches!(g.kind(), GateKind::Const1) {
                self.values[i] = !0;
            }
        }
    }

    /// Set the `idx`-th primary input (creation order) for all 64
    /// patterns at once.
    pub fn set_input(&mut self, idx: usize, patterns: u64) {
        let g = self.nl.inputs()[idx];
        self.values[g.index()] = patterns;
    }

    /// Set a primary input by name. Returns whether the name exists.
    pub fn set_input_by_name(&mut self, name: &str, patterns: u64) -> bool {
        let found = self
            .nl
            .inputs()
            .iter()
            .copied()
            .find(|&g| self.nl.name(g) == Some(name));
        match found {
            Some(g) => {
                self.values[g.index()] = patterns;
                true
            }
            None => false,
        }
    }

    /// Propagate combinational logic with the current inputs and state.
    pub fn settle(&mut self) {
        // expose state on DFF outputs
        for (i, &q) in self.nl.dffs().iter().enumerate() {
            self.values[q.index()] = self.state[i];
        }
        for gi in 0..self.order.len() {
            let g = self.order[gi];
            let gate = &self.nl.gates()[g.index()];
            let mut ins = [0u64; 8];
            let n = gate.inputs().len();
            if n <= 8 {
                for (k, &inp) in gate.inputs().iter().enumerate() {
                    ins[k] = self.values[inp.index()];
                }
                self.values[g.index()] = gate.kind().eval(&ins[..n]);
            } else {
                let ins: Vec<u64> = gate
                    .inputs()
                    .iter()
                    .map(|&i| self.values[i.index()])
                    .collect();
                self.values[g.index()] = gate.kind().eval(&ins);
            }
        }
    }

    /// Settle, then latch every flip-flop (one clock cycle).
    pub fn clock(&mut self) {
        self.settle();
        for (i, &q) in self.nl.dffs().iter().enumerate() {
            let d = self.nl.gates()[q.index()].inputs()[0];
            self.state[i] = self.values[d.index()];
        }
    }

    /// Current primary-output values (after [`Simulator::settle`]).
    #[must_use]
    pub fn outputs(&self) -> Vec<u64> {
        self.nl
            .outputs()
            .iter()
            .map(|(_, g)| self.values[g.index()])
            .collect()
    }

    /// Current value of any net.
    #[must_use]
    pub fn value(&self, g: GateId) -> u64 {
        self.values[g.index()]
    }

    pub(crate) fn order(&self) -> &[GateId] {
        &self.order
    }

    pub(crate) fn state(&self) -> &[u64] {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> Netlist {
        // 1-bit toggle: q.next = q ^ en
        let mut nl = Netlist::new();
        let q = nl.dff("q");
        let en = nl.input("en");
        let d = nl.gate(GateKind::Xor, &[q, en]);
        nl.connect_dff(q, d);
        nl.output("q", q);
        nl
    }

    #[test]
    fn toggle_counts() {
        let mut sim = Simulator::new(counter());
        sim.set_input(0, !0); // enable all patterns
        sim.settle();
        assert_eq!(sim.outputs()[0], 0);
        sim.clock();
        sim.settle();
        assert_eq!(sim.outputs()[0], !0);
        sim.clock();
        sim.settle();
        assert_eq!(sim.outputs()[0], 0);
    }

    #[test]
    fn patterns_are_independent() {
        let mut sim = Simulator::new(counter());
        sim.set_input(0, 0b01); // pattern 0 toggles, pattern 1 holds
        sim.clock();
        sim.settle();
        assert_eq!(sim.outputs()[0] & 0b11, 0b01);
    }

    #[test]
    fn reset_clears_state() {
        let mut sim = Simulator::new(counter());
        sim.set_input(0, !0);
        sim.clock();
        sim.reset();
        sim.set_input(0, 0);
        sim.settle();
        assert_eq!(sim.outputs()[0], 0);
    }

    #[test]
    fn set_input_by_name_works() {
        let mut sim = Simulator::new(counter());
        assert!(sim.set_input_by_name("en", 1));
        assert!(!sim.set_input_by_name("nope", 1));
    }
}
