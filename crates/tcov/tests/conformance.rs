//! Fast conformance checks: the fault-partitioned parallel paths must
//! be bit-identical to the serial-fault oracle (the upstream
//! `FaultSimulator::run` loop) and to themselves at any worker count.
//! The full matrix over the paper benchmarks and 32 generated graphs
//! runs as the `#[ignore]`d release tier in the workspace root's
//! `tests/tcov_conformance.rs`.

use hlts_atpg::{AtpgConfig, FaultSimulator, FaultUniverse, TestGenerator};
use hlts_core::{CancelToken, IntegratedSynthesizer, RunCtl, SynthesisParams};
use hlts_etpn::Etpn;
use hlts_netlist::{elaborate, Netlist};
use hlts_tcov::{fsim, grade, netlist_fingerprint, TcovConfig, TcovError, TcovPool};

/// Synthesize a benchmark and elaborate the bound design to gates.
fn elaborated(bench: &str, bits: u32) -> Netlist {
    let dfg = hlts_benchmarks::by_name(bench).expect("known benchmark");
    let params = SynthesisParams::paper_defaults(bits);
    let result = IntegratedSynthesizer::new(params)
        .run(&dfg)
        .expect("synthesis succeeds");
    let etpn = Etpn::from_parts(&result.dfg, &result.schedule, &result.allocation)
        .expect("etpn builds");
    elaborate(
        &result.dfg,
        &result.schedule,
        &result.allocation,
        &etpn,
        bits,
    )
    .expect("elaboration succeeds")
}

fn small_cfg(nl_steps_hint: usize, sample: usize) -> AtpgConfig {
    AtpgConfig {
        random_sequences: 6,
        sequence_cycles: (nl_steps_hint + 1) * 2,
        fault_sample: Some(sample),
        ..AtpgConfig::default()
    }
}

/// The serial-fault oracle: the upstream `FaultSimulator::run` loop,
/// one sequence at a time, recording each fault's first detecting
/// sequence.
fn serial_oracle(
    nl: &Netlist,
    cfg: &AtpgConfig,
    faults: &[hlts_atpg::Fault],
) -> (Vec<bool>, Vec<Option<usize>>, usize, usize) {
    let ctrl = fsim::control_inputs(nl);
    let seqs = fsim::random_sequences(nl, cfg, &ctrl);
    let mut fs = FaultSimulator::new(nl.clone());
    let mut detected = vec![false; faults.len()];
    let mut first = vec![None; faults.len()];
    let mut detected_random = 0;
    let mut test_cycles = 0;
    for (s, seq) in seqs.iter().enumerate() {
        let before = detected.clone();
        let newly = fs.run(seq, faults, &mut detected);
        if newly > 0 {
            detected_random += newly;
            test_cycles += cfg.sequence_cycles;
            for i in 0..faults.len() {
                if detected[i] && !before[i] {
                    first[i] = Some(s);
                }
            }
        }
        assert_eq!(
            newly,
            detected.iter().zip(&before).filter(|(d, b)| **d && !**b).count()
        );
    }
    (detected, first, detected_random, test_cycles)
}

#[test]
fn parallel_random_phase_matches_serial_oracle() {
    for bench in ["ex", "paulin"] {
        let nl = elaborated(bench, 4);
        let cfg = small_cfg(8, 400);
        let universe = FaultUniverse::collapsed(&nl).sampled(400, cfg.seed);
        let faults = universe.faults();
        let (oracle_det, oracle_first, oracle_rand, oracle_cycles) =
            serial_oracle(&nl, &cfg, faults);
        for jobs in [1usize, 4] {
            let ctrl = fsim::control_inputs(&nl);
            let mut fs = FaultSimulator::new(nl.clone());
            let phase =
                fsim::run_random_phase(&mut fs, &cfg, &ctrl, faults, jobs, &CancelToken::new())
                    .expect("not cancelled");
            assert_eq!(phase.detected, oracle_det, "{bench} jobs={jobs}: bitmap");
            assert_eq!(
                phase.first_detect_seq, oracle_first,
                "{bench} jobs={jobs}: per-fault detecting sequence"
            );
            assert_eq!(phase.detected_random, oracle_rand, "{bench} jobs={jobs}");
            assert_eq!(phase.test_cycles, oracle_cycles, "{bench} jobs={jobs}");
        }
    }
}

#[test]
fn grade_is_bit_identical_across_worker_counts() {
    let nl = elaborated("ex", 4);
    let cfg1 = TcovConfig {
        atpg: small_cfg(8, 300),
        jobs: 1,
    };
    let ctl = RunCtl::none();
    let serial = grade(&nl, &cfg1, &ctl).expect("grades");
    for jobs in [2usize, 4, 8] {
        let cfg = TcovConfig {
            jobs,
            ..cfg1.clone()
        };
        let parallel = grade(&nl, &cfg, &ctl).expect("grades");
        assert_eq!(
            serial.signature(),
            parallel.signature(),
            "jobs={jobs} diverged"
        );
    }
    assert!(serial.coverage() > 0.0 && serial.coverage() <= 100.0);
    assert_eq!(serial.faults_graded, 300);
    assert!(serial.total_collapsed > serial.faults_graded);
    assert!(serial.total_uncollapsed > serial.total_collapsed);
}

/// With the deterministic phase disabled, tcov's report must agree
/// with the serial `TestGenerator` on the random-phase accounting —
/// the oracle tie-in at the report level.
#[test]
fn random_only_grade_matches_testgenerator() {
    let nl = elaborated("paulin", 4);
    let atpg = AtpgConfig {
        max_deterministic_targets: 0,
        ..small_cfg(8, 300)
    };
    let report = grade(
        &nl,
        &TcovConfig {
            atpg: atpg.clone(),
            jobs: 4,
        },
        &RunCtl::none(),
    )
    .expect("grades");
    let oracle = TestGenerator::new(atpg).run(&nl);
    assert_eq!(report.detected_random, oracle.detected_random);
    assert_eq!(report.test_cycles, oracle.test_cycles);
    assert_eq!(report.faults_graded, oracle.total_faults);
    assert_eq!(report.detected_deterministic, 0);
    assert_eq!(report.backtracks, 0);
}

#[test]
fn pool_memoizes_per_netlist_and_per_config() {
    let nl = elaborated("ex", 4);
    let pool = TcovPool::new(4);
    let ctl = RunCtl::none();
    let cfg = TcovConfig {
        atpg: small_cfg(8, 200),
        jobs: 1,
    };
    let first = pool.grade(&nl, &cfg, &ctl).expect("grades");
    let stats = pool.stats();
    assert_eq!((stats.ctx_hits, stats.ctx_misses), (0, 1));
    assert_eq!((stats.report_hits, stats.report_misses), (0, 1));
    // Same netlist + same ATPG config but different jobs: tier-2 hit
    // (reports are jobs-invariant, so jobs is not part of the key).
    let again = pool
        .grade(
            &nl,
            &TcovConfig {
                jobs: 4,
                ..cfg.clone()
            },
            &ctl,
        )
        .expect("grades");
    assert_eq!(first, again);
    let stats = pool.stats();
    assert_eq!((stats.ctx_hits, stats.report_hits), (1, 1));
    // New sample size: context reused, report recomputed.
    let other = pool
        .grade(
            &nl,
            &TcovConfig {
                atpg: small_cfg(8, 120),
                jobs: 1,
            },
            &ctl,
        )
        .expect("grades");
    assert_eq!(other.faults_graded, 120);
    let stats = pool.stats();
    assert_eq!((stats.ctx_hits, stats.ctx_misses), (2, 1));
    assert_eq!((stats.report_hits, stats.report_misses), (1, 2));
}

#[test]
fn fingerprint_distinguishes_structure_and_names() {
    use hlts_netlist::GateKind;
    let mut a = Netlist::new();
    let x = a.input("x");
    let y = a.input("y");
    let g = a.gate(GateKind::And, &[x, y]);
    a.output("o", g);
    let mut b = Netlist::new();
    let x = b.input("x");
    let y = b.input("y");
    let g = b.gate(GateKind::Or, &[x, y]);
    b.output("o", g);
    let mut c = Netlist::new();
    let x = c.input("ctrl_x");
    let y = c.input("y");
    let g = c.gate(GateKind::And, &[x, y]);
    c.output("o", g);
    assert_eq!(netlist_fingerprint(&a), netlist_fingerprint(&a));
    assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&b));
    // Same structure, different input name: the ctrl_* prefix changes
    // the grading protocol, so the fingerprint must differ.
    assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&c));
}

#[test]
fn cancellation_is_reported() {
    let nl = elaborated("ex", 4);
    let token = CancelToken::new();
    token.cancel();
    let ctl = RunCtl::cancel_only(token);
    let out = grade(
        &nl,
        &TcovConfig {
            atpg: small_cfg(8, 200),
            jobs: 4,
        },
        &ctl,
    );
    assert_eq!(out, Err(TcovError::Cancelled));
}
