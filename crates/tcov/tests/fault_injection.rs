//! Resilience: killed grading workers must degrade to recomputation in
//! the merge pass — never to a wrong or missing report. Runs only with
//! the `test-faults` feature (`cargo test -p hlts-tcov --features
//! test-faults`); without it the whole file compiles away.

#![cfg(feature = "test-faults")]

use hlts_atpg::AtpgConfig;
use hlts_check::faults::{sites, FaultPlan};
use hlts_core::{IntegratedSynthesizer, RunCtl, SynthesisParams};
use hlts_etpn::Etpn;
use hlts_netlist::{elaborate, Netlist};
use hlts_tcov::{grade, TcovConfig};

fn elaborated(bench: &str, bits: u32) -> Netlist {
    let dfg = hlts_benchmarks::by_name(bench).expect("known benchmark");
    let result = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(bits))
        .run(&dfg)
        .expect("synthesis succeeds");
    let etpn = Etpn::from_parts(&result.dfg, &result.schedule, &result.allocation)
        .expect("etpn builds");
    elaborate(
        &result.dfg,
        &result.schedule,
        &result.allocation,
        &etpn,
        bits,
    )
    .expect("elaboration succeeds")
}

/// Killing every worker of every phase (random-phase partitions and
/// PODEM targets alike) leaves the survivors' fallback paths — the
/// unclaimed-chunk loop and the merge pass's pure recomputation — to
/// produce the *same* report the unarmed run produces.
#[test]
fn killed_workers_degrade_to_a_correct_report() {
    let nl = elaborated("ex", 4);
    // No random phase: every undetected fault becomes a PODEM target,
    // so the kill exercises the deterministic workers too.
    let cfg = TcovConfig {
        atpg: AtpgConfig {
            random_sequences: 0,
            fault_sample: Some(60),
            max_deterministic_targets: 40,
            ..AtpgConfig::default()
        },
        jobs: 4,
    };
    let ctl = RunCtl::none();
    let baseline = grade(&nl, &cfg, &ctl).expect("unarmed grading succeeds");

    // Enough charges to kill every worker of every scoped phase.
    let guard = FaultPlan::new()
        .arm(sites::TCOV_WORKER_KILL, 1_000)
        .install();
    let degraded = grade(&nl, &cfg, &ctl).expect("grading survives dead workers");
    assert!(
        guard.fired().contains(&sites::TCOV_WORKER_KILL),
        "the kill site must actually fire"
    );
    drop(guard);

    assert_eq!(
        baseline.signature(),
        degraded.signature(),
        "a killed grading worker must degrade to recomputation, not to a different report"
    );
    assert!(
        degraded.stats.recomputed > 0,
        "with every worker dead the merge pass must recompute targets"
    );
}

/// A partial kill (one worker's worth of charges) lets the surviving
/// workers drain the claim queue: same report, by work stealing alone.
#[test]
fn surviving_workers_drain_a_partial_kill() {
    let nl = elaborated("ex", 4);
    let cfg = TcovConfig {
        atpg: AtpgConfig {
            random_sequences: 4,
            sequence_cycles: 10,
            fault_sample: Some(120),
            ..AtpgConfig::default()
        },
        jobs: 4,
    };
    let ctl = RunCtl::none();
    let baseline = grade(&nl, &cfg, &ctl).expect("unarmed grading succeeds");
    let guard = FaultPlan::new().arm(sites::TCOV_WORKER_KILL, 1).install();
    let degraded = grade(&nl, &cfg, &ctl).expect("grading survives one dead worker");
    drop(guard);
    assert_eq!(baseline.signature(), degraded.signature());
}
