//! Fault-partitioned random-phase fault simulation.
//!
//! The random phase's sequencing is split from its per-fault grading:
//! [`random_sequences`] draws every input sequence up front (consuming
//! the RNG in exactly the serial `TestGenerator` order), then each
//! sequence's good-machine trace is recorded once and the pending
//! fault list is sharded over scoped workers that share the immutable
//! simulator ([`detect_partition`]). The detected *set* per sequence is
//! independent of the sharding, and the pending set before sequence
//! `s` depends only on sequences `< s` — so the phase's coverage
//! bitmap, per-fault first-detecting sequence and test-cycle count are
//! bit-identical to the serial-fault path at any worker count.

use hlts_atpg::{AtpgConfig, Fault, FaultSimulator, GoodTrace, PiAssign};
use hlts_core::CancelToken;
use hlts_netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TcovError;

/// Faults graded per work-unit claim (amortizes the claim atomics
/// without starving load balance).
const CHUNK: usize = 32;

/// Indices (into the netlist's primary-input list) of the control
/// inputs, protocol-ordered: the setup state (`ctrl_final`) first,
/// then the step states in elaboration order — one controller walk per
/// one-hot rotation. Mirrors the serial `TestGenerator` exactly.
#[must_use]
pub fn control_inputs(nl: &Netlist) -> Vec<usize> {
    let mut ctrl_idx: Vec<usize> = nl
        .inputs()
        .iter()
        .enumerate()
        .filter(|(_, &g)| nl.name(g).is_some_and(|n| n.starts_with("ctrl_")))
        .map(|(i, _)| i)
        .collect();
    if let Some(pos) = ctrl_idx
        .iter()
        .position(|&i| nl.name(nl.inputs()[i]) == Some("ctrl_final"))
    {
        let f = ctrl_idx.remove(pos);
        ctrl_idx.insert(0, f);
    }
    ctrl_idx
}

/// Draw every random-phase input sequence up front, consuming the
/// seeded RNG in the exact element order the serial `TestGenerator`
/// uses (per cycle, per input). Because the serial path touches the
/// RNG *only* while building sequences, pre-drawing them here keeps
/// the streams identical — which is what lets the per-fault grading
/// underneath parallelize freely.
#[must_use]
pub fn random_sequences(nl: &Netlist, cfg: &AtpgConfig, ctrl_idx: &[usize]) -> Vec<Vec<PiAssign>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.random_sequences)
        .map(|s| {
            let protocol = (s as f64) < cfg.protocol_fraction * cfg.random_sequences as f64;
            (0..cfg.sequence_cycles)
                .map(|cycle| {
                    (0..nl.inputs().len())
                        .map(|i| {
                            if let Some(pos) = ctrl_idx.iter().position(|&c| c == i) {
                                if protocol {
                                    // rotating one-hot over the control states
                                    if cycle % ctrl_idx.len().max(1) == pos {
                                        !0u64
                                    } else {
                                        0
                                    }
                                } else {
                                    rng.gen::<u64>()
                                }
                            } else {
                                rng.gen::<u64>()
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Workers the fault-partitioned loops actually use: never more than
/// the pending work, never less than one.
#[cfg(feature = "parallel")]
pub(crate) fn effective_workers(jobs: usize, pending: usize) -> usize {
    jobs.clamp(1, pending.max(1))
}

#[cfg(not(feature = "parallel"))]
pub(crate) fn effective_workers(_jobs: usize, _pending: usize) -> usize {
    1
}

/// Grade `pending` (indices into `faults`) against one recorded
/// sequence, sharded over `jobs` workers, returning the **sorted**
/// indices of the newly detected faults. The result is a pure set —
/// identical for any worker count, including the single-threaded
/// fallback. Cancellation is polled per work-unit claim.
///
/// # Errors
///
/// [`TcovError::Cancelled`] when `cancel` fires mid-partition.
pub fn detect_partition(
    fs: &FaultSimulator,
    trace: &GoodTrace,
    seq: &[PiAssign],
    faults: &[Fault],
    pending: &[usize],
    jobs: usize,
    cancel: &CancelToken,
) -> Result<Vec<usize>, TcovError> {
    let workers = effective_workers(jobs, pending.len() / CHUNK);
    if workers <= 1 {
        let mut hits = Vec::new();
        for (n, &i) in pending.iter().enumerate() {
            if n % CHUNK == 0 && cancel.is_cancelled() {
                return Err(TcovError::Cancelled);
            }
            if fs.detects(trace, seq, faults[i]) {
                hits.push(i);
            }
        }
        return Ok(hits);
    }
    #[cfg(feature = "parallel")]
    {
        parallel::detect(fs, trace, seq, faults, pending, workers, cancel)
    }
    #[cfg(not(feature = "parallel"))]
    unreachable!("effective_workers returns 1 without the parallel feature")
}

#[cfg(feature = "parallel")]
mod parallel {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    use hlts_atpg::{Fault, FaultSimulator, GoodTrace, PiAssign};
    use hlts_check::faults::{fire, sites};
    use hlts_core::CancelToken;

    use super::CHUNK;
    use crate::TcovError;

    pub(super) fn detect(
        fs: &FaultSimulator,
        trace: &GoodTrace,
        seq: &[PiAssign],
        faults: &[Fault],
        pending: &[usize],
        workers: usize,
        cancel: &CancelToken,
    ) -> Result<Vec<usize>, TcovError> {
        let chunks = pending.len().div_ceil(CHUNK);
        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let mut hits: Vec<usize> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            // A killed worker exits *before* claiming, so
                            // its would-be chunks stay claimable by the
                            // survivors (or by the fallback loop below).
                            if fire(sites::TCOV_WORKER_KILL) {
                                break;
                            }
                            if cancel.is_cancelled() {
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= chunks {
                                break;
                            }
                            let lo = c * CHUNK;
                            let hi = (lo + CHUNK).min(pending.len());
                            for &i in &pending[lo..hi] {
                                if fs.detects(trace, seq, faults[i]) {
                                    local.push(i);
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                if let Ok(local) = h.join() {
                    hits.extend(local);
                }
            }
        });
        if cancel.is_cancelled() {
            return Err(TcovError::Cancelled);
        }
        // Completeness fallback: chunks no surviving worker ever
        // claimed (every worker died early) are graded inline — a
        // degraded schedule, never a degraded answer.
        let claimed = cursor.load(Ordering::Relaxed).min(chunks);
        for c in claimed..chunks {
            let lo = c * CHUNK;
            let hi = (lo + CHUNK).min(pending.len());
            for &i in &pending[lo..hi] {
                if fs.detects(trace, seq, faults[i]) {
                    hits.push(i);
                }
            }
        }
        hits.sort_unstable();
        Ok(hits)
    }
}

/// What the random phase established.
#[derive(Debug, Clone)]
pub struct RandomPhase {
    /// Per-fault detection bitmap.
    pub detected: Vec<bool>,
    /// Per-fault index of the first random sequence that detected it
    /// (the conformance witness against the serial-fault oracle).
    pub first_detect_seq: Vec<Option<usize>>,
    /// Faults the phase detected.
    pub detected_random: usize,
    /// Clock cycles of the kept sequences (those that detected
    /// something).
    pub test_cycles: usize,
    /// Patterns simulated (sequences × cycles × 64).
    pub random_patterns: usize,
}

/// Run the random phase: simulate every sequence's good machine once,
/// shard the pending fault list per sequence, and keep a sequence's
/// cycles only when it detected something — the serial `TestGenerator`
/// accounting, bit-identically, at any `jobs` count.
///
/// # Errors
///
/// [`TcovError::Cancelled`] when `cancel` fires between or inside
/// sequences.
pub fn run_random_phase(
    fs: &mut FaultSimulator,
    cfg: &AtpgConfig,
    ctrl_idx: &[usize],
    faults: &[Fault],
    jobs: usize,
    cancel: &CancelToken,
) -> Result<RandomPhase, TcovError> {
    let seqs = random_sequences(fs.netlist(), cfg, ctrl_idx);
    let mut phase = RandomPhase {
        detected: vec![false; faults.len()],
        first_detect_seq: vec![None; faults.len()],
        detected_random: 0,
        test_cycles: 0,
        random_patterns: cfg.random_sequences * cfg.sequence_cycles * 64,
    };
    for (s, seq) in seqs.iter().enumerate() {
        if cancel.is_cancelled() {
            return Err(TcovError::Cancelled);
        }
        let pending: Vec<usize> = (0..faults.len())
            .filter(|&i| !phase.detected[i])
            .collect();
        if pending.is_empty() {
            break;
        }
        let trace = fs.good_trace(seq);
        let hits = detect_partition(fs, &trace, seq, faults, &pending, jobs, cancel)?;
        if !hits.is_empty() {
            for &i in &hits {
                phase.detected[i] = true;
                phase.first_detect_seq[i] = Some(s);
            }
            phase.detected_random += hits.len();
            phase.test_cycles += cfg.sequence_cycles;
        }
    }
    Ok(phase)
}
