//! The grading engine: random phase, fault-partitioned parallel PODEM
//! with cross-thread fault dropping, and the deterministic merge pass.
//!
//! ## Determinism rule (drop broadcast)
//!
//! Workers claim PODEM targets from a shared counter and broadcast
//! every validated detection through an atomic hint bitmap, so no
//! thread spends backtracks on a fault another thread already covered.
//! The hints are *racy by design* — which worker's test reaches the
//! bitmap first depends on scheduling. The reported coverage does not:
//! a serial **merge pass** walks the fixed target list in fault-index
//! order, keeps a target's test only if its fault is still undetected
//! *at that point of the walk*, and — where a worker skipped a target
//! on a hint (or died before delivering) — recomputes the outcome with
//! the same pure, RNG-free `podem_target` function a worker would have
//! run. Every kept test is then fault-simulated over the pending list,
//! so the detected set, test cycles and backtrack totals are functions
//! of (netlist, config) alone.

use hlts_alloc::Allocation;
use hlts_atpg::{Fault, FaultSimulator, FaultUniverse, PiAssign, Podem, PodemOutcome};
use hlts_core::{CancelToken, RunCtl};
use hlts_dfg::Dfg;
use hlts_etpn::Etpn;
use hlts_netlist::{elaborate, Netlist};
use hlts_sched::Schedule;

use crate::fsim;
use crate::{CoverageReport, GradeStats, TcovConfig, TcovError};

/// The per-frame control-input preset walks PODEM is allowed to try
/// (up to three phase shifts of the controller's one-hot walk).
type Preset = Vec<Vec<Option<bool>>>;

/// What one deterministic target resolved to. A pure function of
/// (netlist, frames, backtrack limit, presets, fault) — no RNG, no
/// cross-target state — so a worker's recorded outcome and the merge
/// pass's recomputation are interchangeable.
#[derive(Debug, Clone)]
enum TargetOutcome {
    /// A validated test (it detects its own target fault).
    Found {
        test: Vec<PiAssign>,
        backtracks: usize,
    },
    /// Every preset was tried without a validated test.
    Exhausted {
        all_untestable: bool,
        backtracks: usize,
    },
}

impl TargetOutcome {
    fn backtracks(&self) -> usize {
        match self {
            TargetOutcome::Found { backtracks, .. }
            | TargetOutcome::Exhausted { backtracks, .. } => *backtracks,
        }
    }
}

/// Build the phase-shifted control presets, exactly as the serial
/// `TestGenerator` does.
fn control_presets(nl: &Netlist, ctrl_idx: &[usize], frames: usize) -> Vec<Preset> {
    let walk_len = ctrl_idx.len().max(1);
    let preset_with_phase = |phase: usize| -> Preset {
        (0..frames)
            .map(|f| {
                (0..nl.inputs().len())
                    .map(|i| {
                        ctrl_idx
                            .iter()
                            .position(|&c| c == i)
                            .map(|pos| !ctrl_idx.is_empty() && (f + phase) % walk_len == pos)
                    })
                    .collect()
            })
            .collect()
    };
    (0..walk_len.min(3)).map(preset_with_phase).collect()
}

/// Resolve one deterministic target: try each preset, validate any
/// test PODEM returns against the target fault itself, and account the
/// backtracks the attempt consumed. `podem` and `fs` are reusable
/// scratch machines — only `Podem::backtracks_used` mutates, and the
/// per-call delta is instance-independent.
fn podem_target(
    podem: &mut Podem,
    fs: &mut FaultSimulator,
    presets: &[Preset],
    fault: Fault,
) -> TargetOutcome {
    let before = podem.backtracks_used();
    let mut all_untestable = true;
    for preset in presets {
        match podem.generate_seeded(fault, Some(preset)) {
            PodemOutcome::Test(t) => {
                all_untestable = false;
                let seq: Vec<PiAssign> = t
                    .iter()
                    .map(|frame| frame.iter().map(|&b| if b { !0u64 } else { 0 }).collect())
                    .collect();
                let trace = fs.good_trace(&seq);
                if fs.detects(&trace, &seq, fault) {
                    return TargetOutcome::Found {
                        test: seq,
                        backtracks: podem.backtracks_used() - before,
                    };
                }
            }
            PodemOutcome::Untestable => {}
            PodemOutcome::Aborted => all_untestable = false,
        }
    }
    TargetOutcome::Exhausted {
        all_untestable,
        backtracks: podem.backtracks_used() - before,
    }
}

/// What the deterministic phase adds to the report.
struct DetPhase {
    detected_deterministic: usize,
    untestable: usize,
    aborted: usize,
    test_cycles: usize,
    backtracks: usize,
    hint_skips: usize,
    recomputed: usize,
}

/// Worker-recorded outcomes, one optional slot per target. Slot `t` is
/// written at most once (targets are claimed exclusively); a `None`
/// means no worker delivered it — hint skip, cancellation, or death —
/// and the merge pass recomputes.
type Slots = Vec<std::sync::Mutex<Option<TargetOutcome>>>;

fn lock_recover<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(feature = "parallel")]
mod workers {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    use hlts_atpg::{Fault, FaultSimulator, Podem};
    use hlts_check::faults::{fire, sites};
    use hlts_core::CancelToken;
    use hlts_netlist::Netlist;

    use super::{podem_target, Preset, Slots, TargetOutcome};

    /// Run the claim-loop workers over the fixed target list, filling
    /// `slots` and broadcasting validated detections through `hints`.
    /// Returns the total (racy, diagnostics-only) hint-skip count.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn run(
        nl: &Netlist,
        frames: usize,
        backtrack_limit: usize,
        presets: &[Preset],
        faults: &[Fault],
        base_detected: &[bool],
        targets: &[usize],
        slots: &Slots,
        hints: &[AtomicBool],
        workers: usize,
        cancel: &CancelToken,
    ) -> usize {
        let cursor = AtomicUsize::new(0);
        let mut hint_skips = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut podem = Podem::new(nl.clone(), frames, backtrack_limit);
                        let mut fs = FaultSimulator::new(nl.clone());
                        let mut skips = 0usize;
                        loop {
                            // Death before the next claim: nothing this
                            // worker holds is lost, survivors (or the
                            // merge pass) cover the rest.
                            if fire(sites::TCOV_WORKER_KILL) {
                                break;
                            }
                            if cancel.is_cancelled() {
                                break;
                            }
                            let t = cursor.fetch_add(1, Ordering::Relaxed);
                            if t >= targets.len() {
                                break;
                            }
                            let fi = targets[t];
                            if hints[fi].load(Ordering::Relaxed) {
                                // Another worker's test already covers
                                // this fault; leave the slot empty — the
                                // merge pass recomputes iff it still
                                // needs the outcome.
                                skips += 1;
                                continue;
                            }
                            let outcome = podem_target(&mut podem, &mut fs, presets, faults[fi]);
                            if let TargetOutcome::Found { test, .. } = &outcome {
                                // Drop broadcast: fault-simulate the new
                                // test over every not-yet-covered fault
                                // and publish the detections.
                                let trace = fs.good_trace(test);
                                for (i, &f) in faults.iter().enumerate() {
                                    if base_detected[i] || hints[i].load(Ordering::Relaxed) {
                                        continue;
                                    }
                                    if fs.detects(&trace, test, f) {
                                        hints[i].store(true, Ordering::Relaxed);
                                    }
                                }
                            }
                            *super::lock_recover(&slots[t]) = Some(outcome);
                        }
                        skips
                    })
                })
                .collect();
            for h in handles {
                if let Ok(skips) = h.join() {
                    hint_skips += skips;
                }
            }
        });
        hint_skips
    }
}

/// The deterministic phase: fixed target list, parallel workers with
/// drop broadcast, serial merge pass.
#[allow(clippy::too_many_arguments)]
fn deterministic_phase(
    nl: &Netlist,
    fs: &mut FaultSimulator,
    cfg: &TcovConfig,
    ctrl_idx: &[usize],
    faults: &[Fault],
    detected: &mut [bool],
    cancel: &CancelToken,
) -> Result<DetPhase, TcovError> {
    let mut phase = DetPhase {
        detected_deterministic: 0,
        untestable: 0,
        aborted: 0,
        test_cycles: 0,
        backtracks: 0,
        hint_skips: 0,
        recomputed: 0,
    };
    // The fixed target list: the first `max_deterministic_targets`
    // still-undetected faults, in fault-index order. Snapshotting it
    // *before* any deterministic test runs is what makes the list — and
    // everything derived from it — independent of worker scheduling.
    let targets: Vec<usize> = (0..faults.len())
        .filter(|&i| !detected[i])
        .take(cfg.atpg.max_deterministic_targets)
        .collect();
    if targets.is_empty() {
        return Ok(phase);
    }
    let presets = control_presets(nl, ctrl_idx, cfg.atpg.frames.max(1));
    let slots: Slots = (0..targets.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();

    let workers = fsim::effective_workers(cfg.jobs, targets.len());
    #[cfg(feature = "parallel")]
    if workers > 1 {
        let hints: Vec<std::sync::atomic::AtomicBool> = (0..faults.len())
            .map(|_| std::sync::atomic::AtomicBool::new(false))
            .collect();
        phase.hint_skips = workers::run(
            nl,
            cfg.atpg.frames,
            cfg.atpg.backtrack_limit,
            &presets,
            faults,
            detected,
            &targets,
            &slots,
            &hints,
            workers,
            cancel,
        );
        if cancel.is_cancelled() {
            return Err(TcovError::Cancelled);
        }
    }
    let _ = workers;

    // Merge pass: serial, fault-index order, recomputing what no
    // worker delivered. Everything the report sees flows through here.
    let mut merge_podem: Option<Podem> = None;
    for (t, &fi) in targets.iter().enumerate() {
        if detected[fi] {
            continue; // dropped by an earlier *kept* test
        }
        if cancel.is_cancelled() {
            return Err(TcovError::Cancelled);
        }
        let outcome = match lock_recover(&slots[t]).take() {
            Some(outcome) => outcome,
            None => {
                phase.recomputed += 1;
                let podem = merge_podem.get_or_insert_with(|| {
                    Podem::new(nl.clone(), cfg.atpg.frames, cfg.atpg.backtrack_limit)
                });
                podem_target(podem, fs, &presets, faults[fi])
            }
        };
        phase.backtracks += outcome.backtracks();
        match outcome {
            TargetOutcome::Found { test, .. } => {
                let pending: Vec<usize> = (0..faults.len()).filter(|&i| !detected[i]).collect();
                let trace = fs.good_trace(&test);
                let hits =
                    fsim::detect_partition(fs, &trace, &test, faults, &pending, cfg.jobs, cancel)?;
                for &i in &hits {
                    detected[i] = true;
                }
                phase.detected_deterministic += hits.len();
                if !hits.is_empty() {
                    phase.test_cycles += test.len();
                }
            }
            TargetOutcome::Exhausted { all_untestable, .. } => {
                if all_untestable && ctrl_idx.is_empty() {
                    // with free inputs, exhaustion proves untestability
                    // within the frame bound
                    phase.untestable += 1;
                } else {
                    phase.aborted += 1;
                }
            }
        }
    }
    Ok(phase)
}

/// Grade a netlist whose collapsed (unsampled) fault universe was
/// already computed — the memo tier's entry point. Sampling (if
/// configured) is applied here, so a memoized universe serves every
/// sample size.
///
/// # Errors
///
/// [`TcovError::Cancelled`] when the run control's token fires; the
/// partial state is discarded.
pub fn grade_with_universe(
    nl: &Netlist,
    universe: &FaultUniverse,
    cfg: &TcovConfig,
    ctl: &RunCtl<'_>,
) -> Result<CoverageReport, TcovError> {
    let sampled: FaultUniverse = match cfg.atpg.fault_sample {
        Some(n) => universe.clone().sampled(n, cfg.atpg.seed),
        None => universe.clone(),
    };
    let faults = sampled.faults();
    let ctrl_idx = fsim::control_inputs(nl);
    let mut fs = FaultSimulator::new(nl.clone());
    let random = fsim::run_random_phase(
        &mut fs,
        &cfg.atpg,
        &ctrl_idx,
        faults,
        cfg.jobs,
        &ctl.cancel,
    )?;
    let mut detected = random.detected;
    let det = deterministic_phase(
        nl,
        &mut fs,
        cfg,
        &ctrl_idx,
        faults,
        &mut detected,
        &ctl.cancel,
    )?;
    Ok(CoverageReport {
        gates: nl.num_gates(),
        faults_graded: faults.len(),
        total_collapsed: universe.len(),
        total_uncollapsed: universe.total_uncollapsed(),
        detected_random: random.detected_random,
        detected_deterministic: det.detected_deterministic,
        untestable: det.untestable,
        aborted: det.aborted,
        test_cycles: random.test_cycles + det.test_cycles,
        backtracks: det.backtracks,
        random_patterns: random.random_patterns,
        stats: GradeStats {
            workers: fsim::effective_workers(cfg.jobs, faults.len()),
            hint_skips: det.hint_skips,
            recomputed: det.recomputed,
        },
    })
}

/// Grade a netlist: collapse its fault universe, run both phases, and
/// report measured coverage. Bit-identical at any `cfg.jobs`.
///
/// # Errors
///
/// [`TcovError::Cancelled`] when the run control's token fires.
pub fn grade(nl: &Netlist, cfg: &TcovConfig, ctl: &RunCtl<'_>) -> Result<CoverageReport, TcovError> {
    let universe = FaultUniverse::collapsed(nl);
    grade_with_universe(nl, &universe, cfg, ctl)
}

/// Grade a bound design: lower it through ETPN to gates, then
/// [`grade`] the elaborated netlist.
///
/// # Errors
///
/// [`TcovError::Build`] when ETPN construction or elaboration fails;
/// [`TcovError::Cancelled`] when the run control's token fires.
pub fn grade_design(
    dfg: &Dfg,
    schedule: &Schedule,
    allocation: &Allocation,
    bits: u32,
    cfg: &TcovConfig,
    ctl: &RunCtl<'_>,
) -> Result<CoverageReport, TcovError> {
    let nl = build_netlist(dfg, schedule, allocation, bits)?;
    grade(&nl, cfg, ctl)
}

/// Elaborate a synthesized design into the gate-level netlist graded
/// by this engine. Shared by [`grade_design`] and the memo pool's
/// design-level entry so both build bit-identical netlists.
pub(crate) fn build_netlist(
    dfg: &Dfg,
    schedule: &Schedule,
    allocation: &Allocation,
    bits: u32,
) -> Result<Netlist, TcovError> {
    let etpn = Etpn::from_parts(dfg, schedule, allocation)
        .map_err(|e| TcovError::Build(e.to_string()))?;
    elaborate(dfg, schedule, allocation, &etpn, bits).map_err(|e| TcovError::Build(e.to_string()))
}
