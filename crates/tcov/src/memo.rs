//! The two-tier coverage memo, following the job engine's `WarmPool`
//! pattern.
//!
//! * **Tier 1** — per-netlist contexts keyed by a structural
//!   fingerprint ([`netlist_fingerprint`]): the collapsed (unsampled)
//!   fault universe, which every grading of that netlist shares
//!   regardless of ATPG configuration.
//! * **Tier 2** — per-context report memo keyed by the ATPG
//!   configuration's canonical debug string. `jobs` is deliberately
//!   **not** part of the key: reports are bit-identical at any worker
//!   count, so a result graded at `jobs = 8` serves a `jobs = 1`
//!   request verbatim.
//!
//! Contexts are built outside the pool lock (double-checked on
//! insert), entries are FIFO-bounded, and all counters are atomics —
//! the same discipline as `WarmPool`, so the daemon can expose both in
//! `status` symmetrically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use hlts_alloc::Allocation;
use hlts_atpg::FaultUniverse;
use hlts_core::RunCtl;
use hlts_dfg::Dfg;
use hlts_netlist::Netlist;
use hlts_sched::Schedule;

use crate::{engine, CoverageReport, TcovConfig, TcovError};

/// Reports memoized per context (FIFO-evicted beyond this).
const MEMO_CAPACITY: usize = 8;

/// FNV-1a over the netlist's structure: gate kinds, input wiring,
/// primary-input/dff/output lists **and names** — names matter because
/// the `ctrl_*` prefix drives the grading protocol, so two netlists
/// that differ only in naming can grade differently.
#[must_use]
pub fn netlist_fingerprint(nl: &Netlist) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut put = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (i, gate) in nl.gates().iter().enumerate() {
        put(&[gate.kind() as u8]);
        for input in gate.inputs() {
            put(&u32::try_from(input.index()).unwrap_or(u32::MAX).to_le_bytes());
        }
        if let Some(name) = nl.name(hlts_netlist::GateId::from_index(i)) {
            put(name.as_bytes());
        }
        put(&[0xff]);
    }
    for g in nl.inputs() {
        put(&u32::try_from(g.index()).unwrap_or(u32::MAX).to_le_bytes());
    }
    for g in nl.dffs() {
        put(&u32::try_from(g.index()).unwrap_or(u32::MAX).to_le_bytes());
    }
    for (name, g) in nl.outputs() {
        put(name.as_bytes());
        put(&u32::try_from(g.index()).unwrap_or(u32::MAX).to_le_bytes());
    }
    hash
}

/// A shared per-netlist grading context (tier 1): the collapsed fault
/// universe plus the bounded report memo (tier 2).
struct TcovCtx {
    universe: FaultUniverse,
    reports: Mutex<Vec<(String, CoverageReport)>>,
}

/// Aggregated memo counters, surfaced in the daemon's `status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcovStats {
    /// Tier-1 hits: gradings that reused a collapsed fault universe.
    pub ctx_hits: u64,
    /// Tier-1 misses: contexts built from scratch.
    pub ctx_misses: u64,
    /// Tier-2 hits: gradings answered from the report memo.
    pub report_hits: u64,
    /// Tier-2 misses: reports actually computed.
    pub report_misses: u64,
}

/// The coverage memo pool. Capacity `0` disables both tiers (every
/// grading computes from scratch, counters untouched).
pub struct TcovPool {
    capacity: usize,
    entries: Mutex<Vec<(u64, Arc<TcovCtx>)>>,
    ctx_hits: AtomicU64,
    ctx_misses: AtomicU64,
    report_hits: AtomicU64,
    report_misses: AtomicU64,
}

impl std::fmt::Debug for TcovPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcovPool")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl TcovPool {
    /// A pool holding up to `capacity` per-netlist contexts.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TcovPool {
            capacity,
            entries: Mutex::new(Vec::new()),
            ctx_hits: AtomicU64::new(0),
            ctx_misses: AtomicU64::new(0),
            report_hits: AtomicU64::new(0),
            report_misses: AtomicU64::new(0),
        }
    }

    /// The memo counters.
    #[must_use]
    pub fn stats(&self) -> TcovStats {
        TcovStats {
            ctx_hits: self.ctx_hits.load(Ordering::Relaxed),
            ctx_misses: self.ctx_misses.load(Ordering::Relaxed),
            report_hits: self.report_hits.load(Ordering::Relaxed),
            report_misses: self.report_misses.load(Ordering::Relaxed),
        }
    }

    /// Fetch-or-build the tier-1 context for `nl`.
    fn context(&self, nl: &Netlist) -> Arc<TcovCtx> {
        let key = netlist_fingerprint(nl);
        if let Some((_, ctx)) = lock_recover(&self.entries).iter().find(|(k, _)| *k == key) {
            self.ctx_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(ctx);
        }
        // Build outside the lock: collapsing a large universe must not
        // serialize unrelated gradings.
        let built = Arc::new(TcovCtx {
            universe: FaultUniverse::collapsed(nl),
            reports: Mutex::new(Vec::new()),
        });
        let mut entries = lock_recover(&self.entries);
        if let Some((_, ctx)) = entries.iter().find(|(k, _)| *k == key) {
            // Double-check: somebody else built it while we did.
            self.ctx_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(ctx);
        }
        self.ctx_misses.fetch_add(1, Ordering::Relaxed);
        if entries.len() >= self.capacity {
            entries.remove(0); // FIFO eviction
        }
        entries.push((key, Arc::clone(&built)));
        built
    }

    /// Grade `nl`, serving both tiers of the memo. The returned report
    /// is exactly what [`engine::grade`] would compute — reports are
    /// jobs-invariant, so the memo key excludes `cfg.jobs`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying grading errors; cancellations and
    /// failures are never memoized.
    pub fn grade(
        &self,
        nl: &Netlist,
        cfg: &TcovConfig,
        ctl: &RunCtl<'_>,
    ) -> Result<CoverageReport, TcovError> {
        if self.capacity == 0 {
            return engine::grade(nl, cfg, ctl);
        }
        let ctx = self.context(nl);
        let key = format!("{:?}", cfg.atpg);
        if let Some((_, report)) = lock_recover(&ctx.reports).iter().find(|(k, _)| *k == key) {
            self.report_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(report.clone());
        }
        let report = engine::grade_with_universe(nl, &ctx.universe, cfg, ctl)?;
        let mut reports = lock_recover(&ctx.reports);
        if !reports.iter().any(|(k, _)| *k == key) {
            if reports.len() >= MEMO_CAPACITY {
                reports.remove(0); // FIFO eviction
            }
            reports.push((key, report.clone()));
        }
        self.report_misses.fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }

    /// Elaborate a synthesized design and grade the resulting netlist
    /// through both memo tiers — the one-call entry the job engine
    /// uses, equivalent to [`crate::grade_design`] plus memoization.
    ///
    /// # Errors
    ///
    /// [`TcovError::Build`] when the design does not elaborate, plus
    /// the usual grading errors; neither is ever memoized.
    pub fn grade_design(
        &self,
        dfg: &Dfg,
        schedule: &Schedule,
        allocation: &Allocation,
        bits: u32,
        cfg: &TcovConfig,
        ctl: &RunCtl<'_>,
    ) -> Result<CoverageReport, TcovError> {
        let nl = engine::build_netlist(dfg, schedule, allocation, bits)?;
        self.grade(&nl, cfg, ctl)
    }
}
