//! # hlts-tcov — parallel gate-level fault-coverage grading
//!
//! The measurement layer behind the paper's Tables 1–3: given a bound
//! design (or an already-elaborated netlist), grade it with the
//! two-phase ATPG flow — random 64-pattern sequences, then
//! deterministic PODEM — and report *measured* fault coverage, test
//! cycles and test-generation effort. One entry point:
//!
//! ```text
//! grade(netlist, &TcovConfig, &RunCtl) -> CoverageReport
//! ```
//!
//! Inside, the expensive per-fault work is **fault-partitioned** across
//! scoped worker threads:
//!
//! * the random phase shards the pending fault list over workers that
//!   share one recorded good-machine trace per sequence
//!   ([`fsim::detect_partition`]);
//! * the deterministic phase hands PODEM targets to workers that
//!   broadcast their validated detections through a shared atomic hint
//!   bitmap, so no thread wastes backtracks on an already-covered
//!   fault ([`engine`]).
//!
//! **Determinism rule:** everything that reaches the [`CoverageReport`]
//! is decided by a serial merge pass in fault-index order, using
//! worker-recorded outcomes where available and recomputing the (pure,
//! RNG-free) PODEM outcome where a racy hint — or a dead worker — left
//! a gap. Worker scheduling can therefore change wall-clock, never the
//! report: coverage is bit-identical at any `jobs` count, and a killed
//! grading worker degrades to recomputation, not to a wrong answer.
//!
//! Repeated grading of the same netlist (sweep neighbours, daemon
//! re-submissions) is served by [`TcovPool`], a two-tier memo keyed by
//! a structural netlist fingerprint and the ATPG configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use hlts_atpg::AtpgConfig;

mod engine;
pub mod fsim;
mod memo;

pub use engine::{grade, grade_design, grade_with_universe};
pub use memo::{netlist_fingerprint, TcovPool, TcovStats};

/// Configuration of one grading run: the ATPG knobs plus the worker
/// count for the fault-partitioned phases.
#[derive(Debug, Clone, PartialEq)]
pub struct TcovConfig {
    /// The two-phase ATPG parameters (seed, sequences, frames,
    /// backtrack limit, optional fault sampling).
    pub atpg: AtpgConfig,
    /// Worker threads for the fault-partitioned phases. `1` runs the
    /// same algorithm single-threaded; the report is bit-identical for
    /// any value.
    pub jobs: usize,
}

impl Default for TcovConfig {
    fn default() -> Self {
        TcovConfig {
            atpg: AtpgConfig::default(),
            jobs: 1,
        }
    }
}

impl TcovConfig {
    /// The CLI's schedule-derived configuration: sequences long enough
    /// to walk the whole controller twice, frames covering the
    /// schedule plus settle slack, and an optional fault-sample cap
    /// (`None` = exhaustive).
    #[must_use]
    pub fn for_schedule(num_steps: usize, fault_sample: Option<usize>, jobs: usize) -> Self {
        TcovConfig {
            atpg: AtpgConfig {
                sequence_cycles: (num_steps + 1) * 2,
                frames: num_steps + 3,
                fault_sample,
                ..AtpgConfig::default()
            },
            jobs: jobs.max(1),
        }
    }
}

/// Diagnostics of one grading run. These counters depend on worker
/// scheduling (how often the hint bitmap raced ahead of a claim, how
/// much the merge pass had to recompute) and are therefore **excluded**
/// from [`CoverageReport`] equality and from [`CoverageReport::signature`].
#[derive(Debug, Clone, Default)]
pub struct GradeStats {
    /// Workers the fault-partitioned phases actually used.
    pub workers: usize,
    /// PODEM targets a worker skipped because the hint bitmap already
    /// marked their fault detected (racy, diagnostics only).
    pub hint_skips: usize,
    /// PODEM outcomes the merge pass recomputed because no worker
    /// delivered them (hint races, cancellations, killed workers).
    pub recomputed: usize,
}

/// The measured result of grading one netlist — the paper's fault
/// coverage / test-generation effort / test-cycle columns, plus the
/// sampled-vs-total fault accounting.
///
/// Equality (and [`signature`](CoverageReport::signature)) covers only
/// the deterministic fields; [`stats`](CoverageReport::stats) is
/// scheduling-dependent bookkeeping.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Gates in the graded netlist.
    pub gates: usize,
    /// Faults actually graded (the sample size when sampling).
    pub faults_graded: usize,
    /// Collapsed faults of the full netlist, before any sampling.
    /// When `faults_graded < total_collapsed` the coverage percentage
    /// is a sample estimate — report both counts.
    pub total_collapsed: usize,
    /// Faults before equivalence collapsing.
    pub total_uncollapsed: usize,
    /// Faults detected by the random phase.
    pub detected_random: usize,
    /// Faults detected by the deterministic phase.
    pub detected_deterministic: usize,
    /// Faults proven untestable within the frame bound.
    pub untestable: usize,
    /// Deterministic targets given up at the backtrack limit.
    pub aborted: usize,
    /// Clock cycles of the kept test set.
    pub test_cycles: usize,
    /// PODEM backtracks of the kept (merge-pass) target outcomes.
    pub backtracks: usize,
    /// Random patterns simulated (sequences × cycles × 64).
    pub random_patterns: usize,
    /// Scheduling-dependent diagnostics (not part of equality).
    pub stats: GradeStats,
}

impl PartialEq for CoverageReport {
    fn eq(&self, other: &Self) -> bool {
        self.signature() == other.signature()
    }
}

impl CoverageReport {
    /// Fault coverage in percent over the graded faults.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.faults_graded == 0 {
            return 100.0;
        }
        100.0 * (self.detected_random + self.detected_deterministic) as f64
            / self.faults_graded as f64
    }

    /// Fault efficiency in percent: detected / (graded − untestable).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        let testable = self.faults_graded.saturating_sub(self.untestable);
        if testable == 0 {
            return 100.0;
        }
        100.0 * (self.detected_random + self.detected_deterministic) as f64 / testable as f64
    }

    /// Normalized test-generation effort: random patterns (in
    /// thousands) plus backtracks — the unit the paper's tables report
    /// as "test generation time".
    #[must_use]
    pub fn effort(&self) -> f64 {
        self.random_patterns as f64 / 1000.0 + self.backtracks as f64
    }

    /// The canonical bit-identity witness: every deterministic field,
    /// with floats in shortest-round-trip (`{:?}`) form. Two runs of
    /// the same (netlist, config) must produce equal signatures at any
    /// `jobs` count — the bench gate and the conformance tests compare
    /// exactly this string.
    #[must_use]
    pub fn signature(&self) -> String {
        format!(
            "gates={} graded={} collapsed={} uncollapsed={} rand={} det={} untest={} \
             abort={} cycles={} backtracks={} patterns={} cov={:?} eff={:?}",
            self.gates,
            self.faults_graded,
            self.total_collapsed,
            self.total_uncollapsed,
            self.detected_random,
            self.detected_deterministic,
            self.untestable,
            self.aborted,
            self.test_cycles,
            self.backtracks,
            self.random_patterns,
            self.coverage(),
            self.efficiency(),
        )
    }
}

/// Grading failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcovError {
    /// The design could not be lowered to gates (ETPN build or
    /// elaboration failed); carries the rendered cause.
    Build(String),
    /// The run's cancel token fired; the partial grading state was
    /// discarded.
    Cancelled,
}

impl std::fmt::Display for TcovError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcovError::Build(msg) => write!(f, "coverage grading failed: {msg}"),
            TcovError::Cancelled => write!(f, "coverage grading cancelled"),
        }
    }
}

impl std::error::Error for TcovError {}
