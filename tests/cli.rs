//! Smoke tests of the `hlts` command-line front end.

use std::process::Command;

fn hlts() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hlts"))
}

#[test]
fn synthesizes_builtin_benchmark() {
    let out = hlts()
        .args(["bench:tseng", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("E = "), "{text}");
    assert!(text.contains("registers = "), "{text}");
}

#[test]
fn reads_a_dfg_file() {
    let dir = std::env::temp_dir().join("hlts-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("mini.dfg");
    std::fs::write(
        &path,
        "dfg mini { input a, b; N1: s = a + b; N2: p = s * b; output p; }",
    )
    .expect("write dfg");
    let out = hlts()
        .args([path.to_str().expect("utf8 path"), "--flow", "approach1"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("modules ="), "{text}");
}

#[test]
fn rejects_unknown_flow() {
    let out = hlts()
        .args(["bench:ex", "--flow", "wat"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flow"), "{err}");
}

#[test]
fn rejects_missing_file() {
    let out = hlts()
        .arg("/nonexistent/path.dfg")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn usage_on_no_args() {
    let out = hlts().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn run_subcommand_is_the_default() {
    let out = hlts()
        .args(["run", "bench:tseng", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("E = "), "{text}");
}

#[test]
fn rejects_zero_k() {
    let out = hlts()
        .args(["bench:ex", "--k", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--k must be >= 1"), "{err}");
}

#[test]
fn rejects_negative_and_nan_weights() {
    for (flag, value) in [("--alpha", "-0.5"), ("--beta", "NaN"), ("--alpha", "inf")] {
        let out = hlts()
            .args(["bench:ex", flag, value])
            .output()
            .expect("binary runs");
        assert!(!out.status.success(), "{flag} {value} accepted");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("finite non-negative"),
            "{flag} {value}: {err}"
        );
    }
}

#[test]
fn unknown_flag_error_lists_the_valid_flags() {
    let out = hlts()
        .args(["bench:ex", "--wat"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("`--wat`"), "{err}");
    for flag in ["--flow", "--bits", "--k", "--alpha", "--beta", "--atpg", "--json", "--quiet"] {
        assert!(err.contains(flag), "missing {flag} in: {err}");
    }

    let out = hlts()
        .args(["explore", "bench:ex", "--wat"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    for flag in ["--weights", "--jobs", "--journal", "--resume"] {
        assert!(err.contains(flag), "missing {flag} in: {err}");
    }
}

#[test]
fn run_json_is_machine_readable() {
    let out = hlts()
        .args(["run", "bench:ex", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert!(text.trim_end().ends_with('}'), "{text}");
    for key in ["\"source\"", "\"metrics\"", "\"execution_time\"", "\"merges\""] {
        assert!(text.contains(key), "missing {key} in: {text}");
    }
    // JSON mode replaces the human report entirely.
    assert!(!text.contains("E = "), "{text}");
}

#[test]
fn explore_reports_a_pareto_front() {
    let out = hlts()
        .args(["explore", "bench:ex", "--k", "1,3", "--weights", "2:1,1:10", "--jobs", "2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Pareto front"), "{text}");
    assert!(text.contains("explored 4 points"), "{text}");
}

#[test]
fn explore_json_is_machine_readable() {
    let out = hlts()
        .args(["explore", "bench:ex", "--k", "1", "--weights", "2:1", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for key in ["\"points\"", "\"front\"", "\"stats\"", "\"points_total\""] {
        assert!(text.contains(key), "missing {key} in: {text}");
    }
}

#[test]
fn explore_journal_roundtrips_through_resume() {
    let dir = std::env::temp_dir().join("hlts-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("resume-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let journal = path.to_str().expect("utf8 path");
    let sweep = ["explore", "bench:ex", "--k", "1,2,3", "--weights", "2:1", "--quiet"];

    let out = hlts()
        .args(sweep)
        .args(["--journal", journal])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let first = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(first.contains("3 computed, 0 resumed"), "{first}");

    // Drop the last journal line to simulate an interrupted sweep.
    let text = std::fs::read_to_string(&path).expect("journal exists");
    let lines: Vec<&str> = text.lines().collect();
    std::fs::write(&path, lines[..lines.len() - 1].join("\n")).expect("truncate");

    let out = hlts()
        .args(sweep)
        .args(["--resume", journal])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let second = String::from_utf8_lossy(&out.stdout);
    assert!(second.contains("1 computed, 2 resumed"), "{second}");
    // Identical front signature: resume changes nothing but the work done.
    let front = |s: &str| s.split("front: ").nth(1).map(str::to_owned);
    assert_eq!(front(&first), front(&second), "{first} vs {second}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn gen_is_deterministic_and_names_the_seed() {
    let run = || {
        let out = hlts()
            .args(["gen", "--seed", "11", "--preset", "loopy-mul"])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run();
    assert_eq!(first, run(), "same (seed, preset) must emit identical text");
    assert!(first.starts_with("dfg loopy_mul_s11 {"), "{first}");
    assert!(first.contains("loop "), "loopy-mul closes loop pairs: {first}");
}

#[test]
fn gen_pipes_into_run_via_stdin() {
    use std::io::Write as _;
    let gen = hlts()
        .args(["gen", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(gen.status.success(), "{gen:?}");

    let mut run = hlts()
        .args(["run", "-", "--quiet", "--audit"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    run.stdin
        .take()
        .expect("piped stdin")
        .write_all(&gen.stdout)
        .expect("feed dfg text");
    let out = run.wait_with_output().expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("audit: clean"), "{text}");
    assert!(text.contains("E = "), "{text}");
}

#[test]
fn gen_writes_to_a_file_and_lists_presets() {
    let dir = std::env::temp_dir().join("hlts-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("gen-{}.dfg", std::process::id()));
    let out = hlts()
        .args(["gen", "--seed", "5", "--ops", "8", "--out"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&path).expect("file written");
    assert!(text.starts_with("dfg balanced_s5 {"), "{text}");

    // The emitted file is directly synthesizable.
    let out = hlts()
        .arg(&path)
        .arg("--quiet")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let _ = std::fs::remove_file(&path);

    let out = hlts()
        .args(["gen", "--list-presets"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for preset in ["balanced", "deep-arith", "wide-logic", "loopy-mul"] {
        assert!(text.contains(preset), "missing {preset} in: {text}");
    }
}

#[test]
fn gen_rejects_unknown_presets_and_bad_knobs() {
    let out = hlts()
        .args(["gen", "--preset", "wat"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown preset `wat`"), "{err}");
    assert!(err.contains("balanced"), "should list presets: {err}");

    let out = hlts()
        .args(["gen", "--ops", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ops must be >= 1"), "{err}");

    let out = hlts()
        .args(["gen", "--wat"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--preset"), "should list gen flags: {err}");
}

#[test]
fn serve_answers_stdin_requests_line_by_line() {
    use std::io::{BufRead as _, BufReader, Write as _};
    let mut daemon = hlts()
        .args(["serve", "--workers", "1", "--queue", "4"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let mut stdin = daemon.stdin.take().expect("piped stdin");
    let mut lines = BufReader::new(daemon.stdout.take().expect("piped stdout")).lines();
    let mut next = |what: &str| -> String {
        lines
            .next()
            .unwrap_or_else(|| panic!("daemon closed stdout waiting for {what}"))
            .expect("read line")
    };
    writeln!(
        stdin,
        r#"{{"op":"submit","id":"j1","job":{{"kind":"run","source":"bench:ex"}}}}"#
    )
    .expect("write submit");
    let ack = next("submit ack");
    assert!(
        ack.contains("\"ok\": true") && ack.contains("\"id\": \"j1\""),
        "{ack}"
    );
    // Progress events stream until the terminal done event.
    loop {
        let line = next("done event");
        if line.contains("\"event\": \"done\"") {
            assert!(line.contains("\"metrics\""), "{line}");
            break;
        }
        assert!(line.contains("\"event\""), "{line}");
    }
    // The done event is emitted just before the job table publishes
    // the terminal state, so poll status until it settles.
    let status = loop {
        writeln!(stdin, r#"{{"op":"status"}}"#).expect("write status");
        let status = next("status");
        if status.contains("\"done\": 1") {
            break status;
        }
        std::thread::yield_now();
    };
    assert!(status.contains("\"interner\""), "{status}");
    writeln!(stdin, r#"{{"op":"shutdown","id":"bye"}}"#).expect("write shutdown");
    let bye = next("shutdown ack");
    assert!(
        bye.contains("\"shutdown\": true") && bye.contains("\"id\": \"bye\""),
        "{bye}"
    );
    let out = daemon.wait_with_output().expect("daemon exits");
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn submit_requires_a_reachable_daemon() {
    // No --connect at all.
    let out = hlts()
        .args(["submit", "bench:ex"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--connect"), "{err}");

    // A --connect nobody listens on: a clean error, not a hang.
    let out = hlts()
        .args(["submit", "bench:ex", "--connect", "127.0.0.1:1"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("connect"), "{err}");
}

/// Ctrl-C on a one-shot sweep: the process exits cleanly with the
/// partial front and a `degraded: cancelled` line, not a dead pipe.
#[cfg(unix)]
#[test]
fn explore_interrupt_reports_a_partial_front() {
    // 18 ewf points take many seconds; the interrupt lands mid-sweep.
    let child = hlts()
        .args([
            "explore",
            "bench:ewf",
            "--k",
            "1,2,3,4,5,6",
            "--weights",
            "2:1,10:1,1:10",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    std::thread::sleep(std::time::Duration::from_millis(400));
    let interrupt = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(interrupt.success(), "kill -INT failed");
    let out = child.wait_with_output().expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("degraded: cancelled"), "{text}");
    assert!(text.contains("Pareto front"), "{text}");
}

/// Every worker-count flag rejects `0` through the same validator —
/// `explore --jobs 0` used to be the odd one out, so pin all of them.
#[test]
fn zero_worker_counts_are_rejected_uniformly() {
    let cases: [(&[&str], &str); 4] = [
        (&["explore", "bench:ex", "--jobs", "0"], "--jobs must be >= 1"),
        (
            &["bench:ex", "--atpg", "--tcov-jobs", "0"],
            "--tcov-jobs must be >= 1",
        ),
        (&["serve", "--workers", "0"], "--workers must be >= 1"),
        (&["serve", "--queue", "0"], "--queue must be >= 1"),
    ];
    for (args, message) in cases {
        let out = hlts().args(args).output().expect("binary runs");
        assert!(!out.status.success(), "{args:?} accepted");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(message), "{args:?}: {err}");
    }
}

/// `--warm-start on` replays neighbour traces but reports the very
/// same front as a cold sweep; garbage modes are rejected.
#[test]
fn explore_warm_start_preserves_the_front() {
    let sweep = ["explore", "bench:ex", "--k", "2", "--weights", "2:1,2:1.05,1:10", "--quiet"];
    let run = |extra: &[&str]| {
        let out = hlts().args(sweep).args(extra).output().expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let cold = run(&["--warm-start", "off"]);
    let warm = run(&["--warm-start", "on"]);
    let front = |s: &str| s.split("front: ").nth(1).map(str::to_owned);
    assert_eq!(front(&cold), front(&warm), "{cold} vs {warm}");

    let out = hlts()
        .args(["explore", "bench:ex", "--warm-start", "sideways"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("expected off or on"), "{err}");
}

#[test]
fn explore_rejects_journal_plus_resume() {
    let out = hlts()
        .args(["explore", "bench:ex", "--journal", "/tmp/a", "--resume", "/tmp/b"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("either --journal"), "{err}");
}
