//! Smoke tests of the `hlts` command-line front end.

use std::process::Command;

fn hlts() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hlts"))
}

#[test]
fn synthesizes_builtin_benchmark() {
    let out = hlts()
        .args(["bench:tseng", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("E = "), "{text}");
    assert!(text.contains("registers = "), "{text}");
}

#[test]
fn reads_a_dfg_file() {
    let dir = std::env::temp_dir().join("hlts-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("mini.dfg");
    std::fs::write(
        &path,
        "dfg mini { input a, b; N1: s = a + b; N2: p = s * b; output p; }",
    )
    .expect("write dfg");
    let out = hlts()
        .args([path.to_str().expect("utf8 path"), "--flow", "approach1"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("modules ="), "{text}");
}

#[test]
fn rejects_unknown_flow() {
    let out = hlts()
        .args(["bench:ex", "--flow", "wat"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flow"), "{err}");
}

#[test]
fn rejects_missing_file() {
    let out = hlts()
        .arg("/nonexistent/path.dfg")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn usage_on_no_args() {
    let out = hlts().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}
