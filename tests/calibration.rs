//! Calibration and cross-layer consistency checks on the area and
//! testability metrics (DESIGN.md's stated calibration targets).

mod common;

use hlts::core::{baselines, SynthesisParams};
use hlts::etpn::{control_to_dot, data_path_to_dot, Etpn};
use hlts::netlist::{elaborate, to_verilog};

/// DESIGN.md calibrates the module library so the Dct CAMAD-style
/// design at 4 bit lands near the paper's 0.607 mm².
#[test]
fn dct_camad_4bit_area_is_near_paper_value() {
    let dfg = hlts::benchmarks::dct();
    let p = SynthesisParams {
        alpha: 0.1,
        beta: 10.0,
        bits: 4,
        ..SynthesisParams::default()
    };
    let r = baselines::camad(&dfg, &p).expect("camad");
    let h = r.metrics.hardware.total();
    assert!(
        (0.35..=0.90).contains(&h),
        "4-bit Dct CAMAD area {h:.3} should be in the paper's 0.607 neighborhood"
    );
}

/// Area grows superlinearly with bit width when multipliers dominate
/// (the paper's 4→16 bit progression multiplies area by ~5).
#[test]
fn area_scales_superlinearly_with_width() {
    let dfg = hlts::benchmarks::dct();
    let area_at = |bits: u32| {
        let p = SynthesisParams {
            bits,
            ..SynthesisParams::paper_defaults(bits)
        };
        baselines::approach1(&dfg, &p)
            .expect("approach1")
            .metrics
            .hardware
            .total()
    };
    let (a4, a16) = (area_at(4), area_at(16));
    assert!(a16 > 4.0 * a4, "a4 = {a4:.3}, a16 = {a16:.3}");
}

/// The exporters produce well-formed artifacts for a full synthesized
/// benchmark design.
#[test]
fn exporters_handle_a_full_design() {
    let dfg = hlts::benchmarks::diffeq();
    let p = SynthesisParams::paper_defaults(8);
    let r = baselines::approach2(&dfg, &p).expect("approach2");
    let etpn = Etpn::from_parts(&r.dfg, &r.schedule, &r.allocation).expect("lowerable");

    let dot = data_path_to_dot(etpn.data_path(), "diffeq_dp");
    assert!(dot.starts_with("digraph diffeq_dp"));
    assert!(dot.matches("label=").count() >= etpn.data_path().num_nodes());

    let ctl = control_to_dot(etpn.control(), "diffeq_ctl");
    assert!(ctl.contains("doublecircle"));

    let nl = elaborate(&r.dfg, &r.schedule, &r.allocation, &etpn, 8).expect("elaborates");
    let v = to_verilog(&nl, "diffeq");
    assert!(v.contains("module diffeq"));
    assert!(v.contains("always @(posedge clk)"));
    // every DFF appears exactly once on the left of a non-blocking assign
    assert_eq!(v.matches(" <= ").count(), nl.dffs().len());
}

/// Gate counts scale with bit width the way the generators promise:
/// the multiplier's quadratic term dominates at 16 bit.
#[test]
fn gate_counts_scale_with_width() {
    let dfg = hlts::benchmarks::ex();
    let p = SynthesisParams::paper_defaults(8);
    let r = baselines::approach1(&dfg, &p).expect("approach1");
    let etpn = Etpn::from_parts(&r.dfg, &r.schedule, &r.allocation).expect("lowerable");
    let gates = |bits: u32| {
        elaborate(&r.dfg, &r.schedule, &r.allocation, &etpn, bits)
            .expect("elaborates")
            .num_gates()
    };
    let (g4, g8, g16) = (gates(4), gates(8), gates(16));
    assert!(g8 > 2 * g4, "g4 = {g4}, g8 = {g8}");
    assert!(g16 > 2 * g8, "g8 = {g8}, g16 = {g16}");
}
