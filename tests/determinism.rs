//! Determinism of the (default) parallel synthesis path: two runs on
//! the same input must produce identical `SynthesisResult`s — the
//! scoped-thread candidate evaluation reduces in shortlist order, so
//! thread scheduling must never leak into the committed mergers, the
//! final design, or even the human-readable merge log.

use hlts::core::{EvalMode, IntegratedSynthesizer, SynthesisParams};

fn benchmarks() -> [(&'static str, hlts::dfg::Dfg); 3] {
    [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ]
}

/// Two explicit parallel runs agree bit-for-bit on every table
/// benchmark.
#[test]
fn parallel_runs_are_identical() {
    for (name, dfg) in benchmarks() {
        let synth = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8));
        let r1 = synth.run_mode(&dfg, EvalMode::Parallel).expect("run 1");
        let r2 = synth.run_mode(&dfg, EvalMode::Parallel).expect("run 2");
        assert_eq!(r1, r2, "{name}: parallel synthesis is nondeterministic");
    }
}

/// The default entry point (`run`, which evaluates candidates in
/// parallel when the `parallel` feature is on) agrees with an explicit
/// sequential run — the acceptance criterion of the parallel ΔC
/// evaluation.
#[test]
fn default_run_matches_sequential() {
    for (name, dfg) in benchmarks() {
        let synth = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8));
        let dflt = synth.run(&dfg).expect("default run");
        let seq = synth
            .run_mode(&dfg, EvalMode::Sequential)
            .expect("sequential run");
        assert_eq!(dflt, seq, "{name}: default mode diverged from sequential");
    }
}
