//! Shape claims from the paper's evaluation, checked on the
//! reconstructed benchmarks with structural (deterministic) metrics.
//! The stochastic fault-coverage comparisons live in EXPERIMENTS.md and
//! the bench binaries; here we pin the deterministic orderings that
//! make those results possible.

mod common;

use hlts::core::{baselines, IntegratedSynthesizer, SynthesisParams, SynthesisResult};

fn ours(dfg: &hlts::dfg::Dfg) -> SynthesisResult {
    IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8))
        .run(dfg)
        .expect("synthesis")
}

fn camad(dfg: &hlts::dfg::Dfg) -> SynthesisResult {
    let p = SynthesisParams {
        alpha: 0.1,
        beta: 10.0,
        ..SynthesisParams::paper_defaults(8)
    };
    baselines::camad(dfg, &p).expect("camad")
}

/// CAMAD-style synthesis keeps one register per variable (the paper's
/// CAMAD rows: 12 registers on Ex, 17 on Dct) while the integrated
/// algorithm shares registers aggressively.
#[test]
fn ours_uses_far_fewer_registers_than_camad() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ] {
        let o = ours(&dfg);
        let c = camad(&dfg);
        assert!(
            o.allocation.num_registers() * 2 <= c.allocation.num_registers() + 2,
            "{name}: ours {} vs camad {}",
            o.allocation.num_registers(),
            c.allocation.num_registers()
        );
    }
}

/// CAMAD trades execution time for hardware: its schedules are longer
/// than the integrated algorithm's on every table benchmark (the paper:
/// CAMAD needs the most control steps).
#[test]
fn camad_schedules_are_longer() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ] {
        let o = ours(&dfg);
        let c = camad(&dfg);
        assert!(
            c.metrics.execution_time > o.metrics.execution_time,
            "{name}: camad E {} vs ours E {}",
            c.metrics.execution_time,
            o.metrics.execution_time
        );
    }
}

/// The integrated algorithm's designs have a shorter controllable-to-
/// observable sequential depth (the SR1 objective) than CAMAD's on the
/// table benchmarks — the structural property behind the paper's
/// fault-coverage and test-time wins.
#[test]
fn ours_has_shorter_co_depth_than_camad() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ] {
        let o = ours(&dfg);
        let c = camad(&dfg);
        assert!(
            o.metrics.co_depth <= c.metrics.co_depth,
            "{name}: ours depth {} vs camad {}",
            o.metrics.co_depth,
            c.metrics.co_depth
        );
    }
}

/// Average node controllability/observability: the C/O-balance-driven
/// flow ends at least as balanced as CAMAD. (Checked on Ex and Dct;
/// Diffeq's CAMAD design keeps every loop variable in its own directly
/// port-loaded register, which inflates its *raw average* C/O even
/// though its sequential depth — the metric that predicts test cost,
/// covered above — is much worse.)
#[test]
fn ours_is_better_co_balanced_than_camad() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
    ] {
        let o = ours(&dfg);
        let c = camad(&dfg);
        let score = |r: &SynthesisResult| {
            r.metrics
                .avg_controllability
                .min(r.metrics.avg_observability)
        };
        assert!(
            score(&o) >= score(&c) - 1e-9,
            "{name}: ours min(C,O) {:.3} vs camad {:.3}",
            score(&o),
            score(&c)
        );
    }
}

/// CAMAD minimizes interconnect: it never needs more muxes than the
/// register-sharing flows (paper: 4 muxes vs 10 on Ex).
#[test]
fn camad_has_fewest_muxes() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ] {
        let o = ours(&dfg);
        let c = camad(&dfg);
        assert!(
            c.metrics.mux_count <= o.metrics.mux_count,
            "{name}: camad {} muxes vs ours {}",
            c.metrics.mux_count,
            o.metrics.mux_count
        );
    }
}

/// The paper's parameter-insensitivity observation: the three (k, α, β)
/// sets it uses lead to the same latency on the table benchmarks and
/// closely clustered resource counts.
#[test]
fn paper_parameter_sets_are_mutually_consistent() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ] {
        let runs: Vec<SynthesisResult> = [(2.0, 1.0), (10.0, 1.0), (1.0, 10.0)]
            .into_iter()
            .map(|(alpha, beta)| {
                IntegratedSynthesizer::new(SynthesisParams {
                    k: 3,
                    alpha,
                    beta,
                    ..SynthesisParams::default()
                })
                .run(&dfg)
                .expect("synthesis")
            })
            .collect();
        let latencies: Vec<usize> = runs.iter().map(|r| r.metrics.execution_time).collect();
        let min = *latencies.iter().min().expect("nonempty");
        let max = *latencies.iter().max().expect("nonempty");
        assert!(
            max - min <= 2,
            "{name}: latencies vary too much: {latencies:?}"
        );
    }
}
