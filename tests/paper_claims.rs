//! Shape claims from the paper's evaluation, checked on the
//! reconstructed benchmarks with structural (deterministic) metrics.
//! The stochastic fault-coverage comparisons live in EXPERIMENTS.md and
//! the bench binaries; here we pin the deterministic orderings that
//! make those results possible.

mod common;

use hlts::core::{baselines, IntegratedSynthesizer, SynthesisParams, SynthesisResult};

fn ours(dfg: &hlts::dfg::Dfg) -> SynthesisResult {
    IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8))
        .run(dfg)
        .expect("synthesis")
}

fn camad(dfg: &hlts::dfg::Dfg) -> SynthesisResult {
    let p = SynthesisParams {
        alpha: 0.1,
        beta: 10.0,
        ..SynthesisParams::paper_defaults(8)
    };
    baselines::camad(dfg, &p).expect("camad")
}

/// CAMAD-style synthesis keeps one register per variable (the paper's
/// CAMAD rows: 12 registers on Ex, 17 on Dct) while the integrated
/// algorithm shares registers aggressively.
#[test]
fn ours_uses_far_fewer_registers_than_camad() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ] {
        let o = ours(&dfg);
        let c = camad(&dfg);
        assert!(
            o.allocation.num_registers() * 2 <= c.allocation.num_registers() + 2,
            "{name}: ours {} vs camad {}",
            o.allocation.num_registers(),
            c.allocation.num_registers()
        );
    }
}

/// CAMAD trades execution time for hardware: its schedules are longer
/// than the integrated algorithm's on every table benchmark (the paper:
/// CAMAD needs the most control steps).
#[test]
fn camad_schedules_are_longer() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ] {
        let o = ours(&dfg);
        let c = camad(&dfg);
        assert!(
            c.metrics.execution_time > o.metrics.execution_time,
            "{name}: camad E {} vs ours E {}",
            c.metrics.execution_time,
            o.metrics.execution_time
        );
    }
}

/// The integrated algorithm's designs have a shorter controllable-to-
/// observable sequential depth (the SR1 objective) than CAMAD's on the
/// table benchmarks — the structural property behind the paper's
/// fault-coverage and test-time wins.
#[test]
fn ours_has_shorter_co_depth_than_camad() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ] {
        let o = ours(&dfg);
        let c = camad(&dfg);
        assert!(
            o.metrics.co_depth <= c.metrics.co_depth,
            "{name}: ours depth {} vs camad {}",
            o.metrics.co_depth,
            c.metrics.co_depth
        );
    }
}

/// Average node controllability/observability: the C/O-balance-driven
/// flow ends at least as balanced as CAMAD. (Checked on Ex and Dct;
/// Diffeq's CAMAD design keeps every loop variable in its own directly
/// port-loaded register, which inflates its *raw average* C/O even
/// though its sequential depth — the metric that predicts test cost,
/// covered above — is much worse.)
#[test]
fn ours_is_better_co_balanced_than_camad() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
    ] {
        let o = ours(&dfg);
        let c = camad(&dfg);
        let score = |r: &SynthesisResult| {
            r.metrics
                .avg_controllability
                .min(r.metrics.avg_observability)
        };
        assert!(
            score(&o) >= score(&c) - 1e-9,
            "{name}: ours min(C,O) {:.3} vs camad {:.3}",
            score(&o),
            score(&c)
        );
    }
}

/// CAMAD minimizes interconnect: it never needs more muxes than the
/// register-sharing flows (paper: 4 muxes vs 10 on Ex).
#[test]
fn camad_has_fewest_muxes() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ] {
        let o = ours(&dfg);
        let c = camad(&dfg);
        assert!(
            c.metrics.mux_count <= o.metrics.mux_count,
            "{name}: camad {} muxes vs ours {}",
            c.metrics.mux_count,
            o.metrics.mux_count
        );
    }
}

/// Golden regression pins for the Table 1/2/3 benchmarks: the exact
/// (control steps, module count, register count) triple the integrated
/// synthesizer produces under each of the paper's parameter sets
/// (`paper_defaults(4|8|16)` ⇒ (k, α, β) = (3, 2, 1), (3, 10, 1),
/// (3, 1, 10)).
///
/// These are **outputs of this reproduction**, not numbers printed in
/// the paper: they pin the deterministic behavior of the whole
/// pipeline (candidate ranking, ΔC pricing through the cached
/// critical-path engine, merge-sort rescheduling) so that any change
/// to any of those layers — including the parallel candidate
/// evaluation path, which `run()` uses by default — is caught here.
#[test]
fn golden_table_synthesis_outputs_are_pinned() {
    #[rustfmt::skip]
    let golden: &[(&str, u32, usize, usize, usize)] = &[
        // (benchmark, bits, control steps, modules, registers)
        ("ex",     4,  4,  4, 6),
        ("ex",     8,  4,  4, 6),
        ("ex",     16, 5,  3, 6),
        ("dct",    4,  3, 10, 9),
        ("dct",    8,  3, 10, 9),
        ("dct",    16, 7,  4, 9),
        ("diffeq", 4,  4,  5, 8),
        ("diffeq", 8,  4,  5, 8),
        ("diffeq", 16, 7,  2, 8),
    ];
    for &(name, bits, steps, modules, registers) in golden {
        let dfg = match name {
            "ex" => hlts::benchmarks::ex(),
            "dct" => hlts::benchmarks::dct(),
            "diffeq" => hlts::benchmarks::diffeq(),
            other => unreachable!("unknown benchmark {other}"),
        };
        let r = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(bits))
            .run(&dfg)
            .expect("synthesis");
        assert_eq!(
            (
                r.metrics.execution_time,
                r.allocation.num_modules(),
                r.allocation.num_registers(),
            ),
            (steps, modules, registers),
            "{name} @ {bits} bits diverged from the pinned golden output"
        );
    }
}

/// The paper's parameter-insensitivity observation: the three (k, α, β)
/// sets it uses lead to the same latency on the table benchmarks and
/// closely clustered resource counts.
#[test]
fn paper_parameter_sets_are_mutually_consistent() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ] {
        let runs: Vec<SynthesisResult> = [(2.0, 1.0), (10.0, 1.0), (1.0, 10.0)]
            .into_iter()
            .map(|(alpha, beta)| {
                IntegratedSynthesizer::new(SynthesisParams {
                    k: 3,
                    alpha,
                    beta,
                    ..SynthesisParams::default()
                })
                .run(&dfg)
                .expect("synthesis")
            })
            .collect();
        let latencies: Vec<usize> = runs.iter().map(|r| r.metrics.execution_time).collect();
        let min = *latencies.iter().min().expect("nonempty");
        let max = *latencies.iter().max().expect("nonempty");
        assert!(
            max - min <= 2,
            "{name}: latencies vary too much: {latencies:?}"
        );
    }
}
