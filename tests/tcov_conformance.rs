//! Release-tier conformance matrix for the parallel coverage engine:
//! over the four paper benchmarks and 32 generated workloads, the
//! fault-partitioned parallel random phase must match the serial-fault
//! oracle (detection bitmap and per-fault first-detecting sequence),
//! and a full grade must be bit-identical at 1 and 4 workers.
//!
//! Ignored by default (minutes of release-mode work); CI runs it as
//! `cargo test --release -- --ignored tcov_matrix`.

use hlts::atpg::{AtpgConfig, FaultSimulator, FaultUniverse};
use hlts::core::{CancelToken, IntegratedSynthesizer, RunCtl, SynthesisParams};
use hlts::dfg::Dfg;
use hlts::etpn::Etpn;
use hlts::netlist::{elaborate, Netlist};
use hlts::tcov::{fsim, grade, TcovConfig};

const BITS: u32 = 4;

/// Synthesize a behavior with the paper defaults and elaborate the
/// bound design to gates.
fn elaborated(dfg: &Dfg) -> Netlist {
    let result = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(BITS))
        .run(dfg)
        .expect("synthesis succeeds");
    let etpn = Etpn::from_parts(&result.dfg, &result.schedule, &result.allocation)
        .expect("etpn builds");
    elaborate(
        &result.dfg,
        &result.schedule,
        &result.allocation,
        &etpn,
        BITS,
    )
    .expect("elaboration succeeds")
}

fn matrix_cfg() -> AtpgConfig {
    AtpgConfig {
        random_sequences: 4,
        sequence_cycles: 18,
        fault_sample: Some(250),
        max_deterministic_targets: 40,
        ..AtpgConfig::default()
    }
}

/// The serial-fault oracle: the upstream `FaultSimulator::run` loop,
/// one sequence at a time, recording each fault's first detecting
/// sequence — the reference the partitioned path must reproduce.
fn serial_oracle(
    nl: &Netlist,
    cfg: &AtpgConfig,
    faults: &[hlts::atpg::Fault],
) -> (Vec<bool>, Vec<Option<usize>>) {
    let ctrl = fsim::control_inputs(nl);
    let seqs = fsim::random_sequences(nl, cfg, &ctrl);
    let mut fs = FaultSimulator::new(nl.clone());
    let mut detected = vec![false; faults.len()];
    let mut first = vec![None; faults.len()];
    for (s, seq) in seqs.iter().enumerate() {
        let before = detected.clone();
        if fs.run(seq, faults, &mut detected) > 0 {
            for i in 0..faults.len() {
                if detected[i] && !before[i] {
                    first[i] = Some(s);
                }
            }
        }
    }
    (detected, first)
}

/// One workload through the whole claim: partitioned random phase
/// against the oracle, then full grades at 1 vs 4 workers.
fn check_workload(tag: &str, dfg: &Dfg) {
    let nl = elaborated(dfg);
    let cfg = matrix_cfg();
    let universe = FaultUniverse::collapsed(&nl).sampled(250, cfg.seed);
    let faults = universe.faults();
    let (oracle_det, oracle_first) = serial_oracle(&nl, &cfg, faults);
    for jobs in [1usize, 4] {
        let ctrl = fsim::control_inputs(&nl);
        let mut fs = FaultSimulator::new(nl.clone());
        let phase =
            fsim::run_random_phase(&mut fs, &cfg, &ctrl, faults, jobs, &CancelToken::new())
                .expect("not cancelled");
        assert_eq!(phase.detected, oracle_det, "{tag} jobs={jobs}: bitmap");
        assert_eq!(
            phase.first_detect_seq, oracle_first,
            "{tag} jobs={jobs}: per-fault detecting sequence"
        );
    }

    let ctl = RunCtl::none();
    let serial = grade(&nl, &TcovConfig { atpg: cfg.clone(), jobs: 1 }, &ctl).expect("grades");
    let parallel = grade(&nl, &TcovConfig { atpg: cfg, jobs: 4 }, &ctl).expect("grades");
    assert_eq!(
        serial.signature(),
        parallel.signature(),
        "{tag}: grade diverged across worker counts"
    );
}

/// The four paper benchmarks end-to-end.
#[test]
#[ignore = "release-tier matrix; run with -- --ignored"]
fn tcov_matrix_paper_benchmarks() {
    for bench in ["ex", "paulin", "tseng", "diffeq"] {
        let dfg = hlts::benchmarks::by_name(bench).expect("known benchmark");
        check_workload(bench, &dfg);
    }
}

/// 32 seeded generator workloads (8 seeds × the 4 presets), the same
/// population the differential conformance harness draws from.
#[test]
#[ignore = "release-tier matrix; run with -- --ignored"]
fn tcov_matrix_generated_workloads() {
    for preset in hlts::gen::PRESET_NAMES {
        let mut cfg = hlts::gen::preset(preset).expect("known preset");
        // Keep each netlist small enough that 32 synthesize+grade
        // rounds stay in release-tier budget; the structure sweep
        // comes from the seed × preset spread, not graph size.
        cfg.ops = cfg.ops.min(16);
        for seed in 0..8u64 {
            let dfg = hlts::gen::generate(seed, &cfg).expect("generates");
            check_workload(&format!("{preset}-s{seed}"), &dfg);
        }
    }
}
