//! Counting-allocator proof of the arena refactor's headline claim:
//! once warmed up, a trial merge (apply → price → roll back) performs
//! **zero heap allocations**.
//!
//! Compiled only under the `count-allocs` feature — the test binary
//! swaps in a byte/call-counting `#[global_allocator]`, which would
//! skew every other suite's timings. CI runs it in release:
//!
//! ```text
//! cargo test --release --features count-allocs --test zero_alloc
//! ```
//!
//! The measured loop uses **order-forced** candidates (the precedence
//! relation fixes every merge-sort decision), because a free ordering
//! decision triggers the SR2 merit probe, which legitimately lowers the
//! state to ETPN — a cold, allocating analysis outside the steady-state
//! trial path. The strict zero assertion runs in release only: debug
//! builds re-audit the whole design after every rollback, and the
//! auditor allocates by design.
#![cfg(feature = "count-allocs")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use hlts_core::{trial_merge, DesignState, MergeKind, OrderStrategy};

/// Pass-through allocator that tallies every allocation of the calling
/// thread. Per-thread counters keep the libtest harness threads (which
/// may allocate while the test runs) out of the measurement. `dealloc`
/// is not counted: rollback must not *allocate*, but dropping warmed
/// buffers at thread exit is fine.
struct CountingAlloc;

thread_local! {
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// `try_with` because an allocation during TLS teardown must still be
/// served, just not counted.
fn tally(bytes: usize) {
    let _ = TL_BYTES.try_with(|b| b.set(b.get() + bytes as u64));
    let _ = TL_CALLS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        tally(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        tally(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        tally(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocation (bytes, calls) performed by this thread while running `f`.
fn measured<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let b0 = TL_BYTES.with(Cell::get);
    let c0 = TL_CALLS.with(Cell::get);
    let r = f();
    (
        TL_BYTES.with(Cell::get) - b0,
        TL_CALLS.with(Cell::get) - c0,
        r,
    )
}

const STRATEGY: OrderStrategy = OrderStrategy::CoEnhancement;

fn price(t: &DesignState) -> Option<f64> {
    Some(t.schedule.num_steps() as f64)
}

/// Feasible candidates whose every ordering decision is already forced
/// by the precedence relation, so no trial consults the SR2 merit
/// probe. With the initial one-to-one binding each module holds one op
/// and each register one value, making forcedness a single
/// reachability test per pair.
fn forced_shortlist(state: &mut DesignState, k: usize) -> Vec<MergeKind> {
    let mut out = Vec::new();
    let mods: Vec<(_, _)> = state
        .allocation
        .modules()
        .map(|m| (m.id(), m.ops()[0]))
        .collect();
    'mods: for i in 0..mods.len() {
        for j in (i + 1)..mods.len() {
            let ((ma, oa), (mb, ob)) = (mods[i], mods[j]);
            if !(state.dfg.reaches(oa, ob) || state.dfg.reaches(ob, oa)) {
                continue; // free decision: SR2 would lower to ETPN
            }
            let kind = MergeKind::Modules(ma, mb);
            if trial_merge(state, kind, STRATEGY, price).is_some() {
                out.push(kind);
                if out.len() >= k {
                    break 'mods;
                }
            }
        }
    }
    let module_cands = out.len();
    let regs: Vec<(_, _)> = state
        .allocation
        .registers()
        .map(|r| (r.id(), r.values()[0]))
        .collect();
    'regs: for i in 0..regs.len() {
        for j in (i + 1)..regs.len() {
            let ((ra, va), (rb, vb)) = (regs[i], regs[j]);
            // One value's definition must reach the other's: the
            // reverse lifetime order is then cyclic, so the pair probe
            // is decided without an SR2 merit comparison.
            let forced = match (state.dfg.def_of(va), state.dfg.def_of(vb)) {
                (Some(da), Some(db)) => state.dfg.reaches(da, db) || state.dfg.reaches(db, da),
                _ => false,
            };
            if !forced {
                continue;
            }
            let kind = MergeKind::Registers(ra, rb);
            if trial_merge(state, kind, STRATEGY, price).is_some() {
                out.push(kind);
                if out.len() >= module_cands + k {
                    break 'regs;
                }
            }
        }
    }
    assert!(
        module_cands >= 1 && out.len() > module_cands,
        "need both module and register candidates (got {module_cands} + {})",
        out.len() - module_cands
    );
    out
}

#[test]
fn steady_state_trial_merge_allocates_zero_bytes() {
    let (name, dfg) = hlts_benchmarks::all()
        .into_iter()
        .max_by_key(|(_, d)| d.num_ops())
        .expect("bundled benchmarks");
    assert_eq!(name, "ewf", "largest bundled benchmark changed");
    let mut state = DesignState::initial(&dfg).expect("initial state");
    let cands = forced_shortlist(&mut state, 4);

    // Warm-up: first trials size the thread-local scratch pools, the
    // overlay adjacency capacity and the txn journal pool.
    for _ in 0..3 {
        for &kind in &cands {
            assert!(trial_merge(&mut state, kind, STRATEGY, price).is_some());
        }
    }

    let iters = 25;
    let mut per_trial: Vec<(usize, usize, u64, u64)> = Vec::with_capacity(iters * cands.len());
    let (bytes, calls, ()) = measured(|| {
        for it in 0..iters {
            for (ci, &kind) in cands.iter().enumerate() {
                let (b, c, priced) = measured(|| trial_merge(&mut state, kind, STRATEGY, price));
                assert!(priced.is_some());
                per_trial.push((it, ci, b, c));
            }
        }
    });
    for &(it, ci, b, c) in per_trial.iter().filter(|t| t.3 > 0) {
        println!("iter {it} cand {ci} ({:?}): {b} bytes / {c} allocs", cands[ci]);
    }
    let trials = iters * cands.len();
    println!(
        "{name}: {trials} steady-state trials over {} candidates: \
         {bytes} bytes in {calls} allocations",
        cands.len()
    );
    // Debug builds re-audit the rolled-back design after every trial
    // (hlts-check allocates its report) — the zero claim is about the
    // shipping configuration.
    #[cfg(not(debug_assertions))]
    assert_eq!(
        (bytes, calls),
        (0, 0),
        "steady-state trial merges must not touch the heap"
    );
    // Keep the trial results observable so the loop cannot be elided.
    assert!(state.validate().is_ok());
}
