//! Property tests for the CSR data adjacency and the overlay arc
//! arena that replaced the old `Vec`-building neighborhood accessors.
//!
//! The accessors under test return slices into precomputed storage, so
//! a construction bug would silently skew every downstream analysis
//! (scheduling priorities, reachability, merge ordering). Each graph —
//! every bundled benchmark plus 32 generated ones — is checked against
//! an oracle that rebuilds the neighborhoods the way the deleted
//! accessors did: walking `inputs`/`def` and `output`/`uses` with
//! first-occurrence dedup.

use hlts_dfg::{Dfg, OpId};
use hlts_gen::{generate, preset, PRESET_NAMES};

/// Every graph the suite sweeps: the bundled benchmarks plus 8 seeds of
/// each generator preset (32 generated graphs).
fn corpus() -> Vec<(String, Dfg)> {
    let mut out: Vec<(String, Dfg)> = hlts_benchmarks::all()
        .into_iter()
        .map(|(n, d)| (n.to_owned(), d))
        .collect();
    for name in PRESET_NAMES {
        let cfg = preset(name).expect("built-in preset");
        for seed in 0..8u64 {
            let d = generate(seed, &cfg).expect("generator");
            out.push((format!("{name}/seed{seed}"), d));
        }
    }
    out
}

/// The deleted accessors' semantics: data predecessors are the
/// producers of `op`'s inputs in port order, first occurrence kept.
fn oracle_data_preds(dfg: &Dfg, op: OpId) -> Vec<OpId> {
    let mut out = Vec::new();
    for &v in dfg.op(op).inputs() {
        if let Some(p) = dfg.def_of(v) {
            if !out.contains(&p) {
                out.push(p);
            }
        }
    }
    out
}

/// Data successors: the consumers of `op`'s output in use-list order,
/// first occurrence kept.
fn oracle_data_succs(dfg: &Dfg, op: OpId) -> Vec<OpId> {
    let mut out = Vec::new();
    if let Some(v) = dfg.op(op).output() {
        for &u in dfg.uses_of(v) {
            if !out.contains(&u) {
                out.push(u);
            }
        }
    }
    out
}

#[test]
fn csr_rows_match_use_def_oracle_on_all_graphs() {
    for (name, dfg) in corpus() {
        for op in dfg.ops() {
            let o = op.id();
            assert_eq!(
                dfg.data_preds(o),
                oracle_data_preds(&dfg, o),
                "{name}: data_preds({o})"
            );
            assert_eq!(
                dfg.data_succs(o),
                oracle_data_succs(&dfg, o),
                "{name}: data_succs({o})"
            );
        }
    }
}

/// `preds`/`succs` = CSR row followed by overlay arcs in insertion
/// order, duplicates of the data relation suppressed.
fn oracle_preds(dfg: &Dfg, op: OpId) -> Vec<OpId> {
    let mut out = oracle_data_preds(dfg, op);
    for &(a, b) in dfg.extra_precedence() {
        if b == op && !out.contains(&a) {
            out.push(a);
        }
    }
    out
}

fn oracle_succs(dfg: &Dfg, op: OpId) -> Vec<OpId> {
    let mut out = oracle_data_succs(dfg, op);
    for &(a, b) in dfg.extra_precedence() {
        if a == op && !out.contains(&b) {
            out.push(b);
        }
    }
    out
}

/// Deterministically sprinkle overlay arcs over a graph: for every op
/// pair at a fixed index stride, try a strict arc one way and a weak
/// arc the other; cyclic attempts are rejected by the graph and simply
/// skipped.
fn sprinkle_arcs(dfg: &mut Dfg) -> (usize, usize) {
    let n = dfg.num_ops();
    let (mut strict, mut weak) = (0, 0);
    for i in 0..n {
        for (stride, as_weak) in [(3usize, false), (5, true)] {
            let j = (i + stride) % n;
            if i == j {
                continue;
            }
            let (a, b) = (OpId::from_index(i), OpId::from_index(j));
            let added = if as_weak {
                dfg.add_weak_precedence(a, b)
            } else {
                dfg.add_precedence(a, b)
            };
            if added.is_ok() {
                if as_weak {
                    weak += 1;
                } else {
                    strict += 1;
                }
            }
        }
    }
    (strict, weak)
}

#[test]
fn overlay_adjacency_tracks_arc_arena_on_all_graphs() {
    for (name, mut dfg) in corpus() {
        let (strict, weak) = sprinkle_arcs(&mut dfg);
        assert_eq!(dfg.extra_precedence().len(), strict, "{name}");
        assert_eq!(dfg.weak_precedence().len(), weak, "{name}");
        for op in dfg.ops() {
            let o = op.id();
            let preds: Vec<OpId> = dfg.preds(o).collect();
            let succs: Vec<OpId> = dfg.succs(o).collect();
            assert_eq!(preds, oracle_preds(&dfg, o), "{name}: preds({o})");
            assert_eq!(succs, oracle_succs(&dfg, o), "{name}: succs({o})");
            // The weak overlay mirrors the weak arc arena directly.
            let wp: Vec<OpId> = dfg
                .weak_precedence()
                .iter()
                .filter(|&&(_, b)| b == o)
                .map(|&(a, _)| a)
                .collect();
            let ws: Vec<OpId> = dfg
                .weak_precedence()
                .iter()
                .filter(|&&(a, _)| a == o)
                .map(|&(_, b)| b)
                .collect();
            assert_eq!(dfg.weak_preds(o), wp.as_slice(), "{name}: weak_preds({o})");
            assert_eq!(dfg.weak_succs(o), ws.as_slice(), "{name}: weak_succs({o})");
        }
    }
}

#[test]
fn truncate_restores_adjacency_to_the_savepoint_on_all_graphs() {
    for (name, mut dfg) in corpus() {
        // A first layer of arcs below the savepoint must survive.
        sprinkle_arcs(&mut dfg);
        let snapshot_preds: Vec<Vec<OpId>> = dfg
            .ops()
            .iter()
            .map(|op| dfg.preds(op.id()).collect())
            .collect();
        let snapshot_weak: Vec<Vec<OpId>> = dfg
            .ops()
            .iter()
            .map(|op| dfg.weak_preds(op.id()).to_vec())
            .collect();
        let arcs_before = (dfg.extra_precedence().len(), dfg.weak_precedence().len());

        let sp = dfg.arc_savepoint();
        // A second layer above it (different strides)...
        let n = dfg.num_ops();
        let mut added = 0;
        for i in 0..n {
            let j = (i + 7) % n;
            if i != j && dfg.add_precedence(OpId::from_index(i), OpId::from_index(j)).is_ok() {
                added += 1;
            }
            let k = (i + 11) % n;
            if i != k && dfg.add_weak_precedence(OpId::from_index(i), OpId::from_index(k)).is_ok() {
                added += 1;
            }
        }
        // ...is dropped exactly by the truncation.
        assert_eq!(dfg.truncate_arcs(sp), added, "{name}");
        assert_eq!(
            (dfg.extra_precedence().len(), dfg.weak_precedence().len()),
            arcs_before,
            "{name}"
        );
        for (i, op) in dfg.ops().iter().enumerate() {
            let o = op.id();
            let preds: Vec<OpId> = dfg.preds(o).collect();
            assert_eq!(preds, snapshot_preds[i], "{name}: preds({o}) after truncate");
            assert_eq!(
                dfg.weak_preds(o),
                snapshot_weak[i].as_slice(),
                "{name}: weak_preds({o}) after truncate"
            );
        }
    }
}
