//! Textual round-trip of every bundled benchmark, and pinned parser
//! error paths.
//!
//! The emitter (`hlts::dfg::emit`) is the inverse of the parser:
//! `parse(emit(g))` must reconstruct `g` structurally identically —
//! same value ids, same operation ids, same outputs and loop-carried
//! pairs — which is what lets generated workloads and divergence
//! reports replay through `hlts run -` byte-for-byte. The error-path
//! tests pin the `DfgError` variants the parser raises on malformed
//! input, so error-handling changes are visible diffs rather than
//! silent drift.

use hlts::dfg::{emit, parse, DfgError};

/// Every DATE'98 benchmark survives emit → parse exactly.
#[test]
fn every_benchmark_roundtrips_exactly() {
    for (name, dfg) in hlts::benchmarks::all() {
        let text = emit(&dfg).unwrap_or_else(|e| panic!("{name}: emit failed: {e}"));
        let back = parse(&text).unwrap_or_else(|e| panic!("{name}: re-parse failed: {e}\n{text}"));
        assert_eq!(dfg, back, "{name}: round-trip changed the graph");
        // And the emission is a fixpoint: emitting the re-parse
        // reproduces the text byte-for-byte.
        let again = emit(&back).unwrap_or_else(|e| panic!("{name}: re-emit failed: {e}"));
        assert_eq!(text, again, "{name}: emission is not stable");
    }
}

/// A duplicate operation name is a `DuplicateOp`, naming the op.
#[test]
fn duplicate_op_name_is_rejected() {
    let err = parse("dfg d { input a, b; N1: s = a + b; N1: t = s + b; output t; }")
        .expect_err("duplicate op must be rejected");
    assert!(
        matches!(&err, DfgError::DuplicateOp(n) if n == "N1"),
        "wrong error: {err:?}"
    );
}

/// Re-defining an operation result is a `DuplicateValue` (the IR is
/// SSA-like); re-*declaring* an input or constant is the builder's
/// documented declare-or-fetch idempotency, not an error.
#[test]
fn duplicate_value_name_is_rejected() {
    let err = parse("dfg d { input a, b; N1: s = a + b; N2: s = a - b; output s; }")
        .expect_err("duplicate op result must be rejected");
    assert!(
        matches!(&err, DfgError::DuplicateValue(n) if n == "s"),
        "wrong error: {err:?}"
    );
    // Declare-or-fetch: `input a, a` resolves to one value.
    let dfg = parse("dfg d { input a, a; N1: s = a + a; output s; }").expect("idempotent");
    assert_eq!(dfg.inputs().count(), 1);
}

/// An operand that was never declared is a line-numbered parse error
/// telling the user how to fix it.
#[test]
fn use_before_def_is_rejected_with_line_number() {
    let err = parse("dfg d {\n  input a;\n  N1: s = a + zz;\n  output s;\n}")
        .expect_err("undeclared operand must be rejected");
    match err {
        DfgError::Parse { line, message } => {
            assert_eq!(line, 3, "error should point at the offending line");
            assert!(message.contains("undeclared value `zz`"), "{message}");
            assert!(message.contains("dependence order"), "{message}");
        }
        other => panic!("wrong error: {other:?}"),
    }
}

/// An expression with a missing operand is rejected, not silently
/// parsed: a dangling binary/unary operator is a bad identifier, and a
/// bare `shl` (the keyword needs a trailing operand) falls through to
/// the unrecognized-expression diagnostic.
#[test]
fn empty_operand_expressions_are_rejected() {
    for text in [
        "dfg d { input a; N1: s = a + ; output s; }",
        "dfg d { input a; N1: s = ~ ; output s; }",
    ] {
        let err = parse(text).expect_err("empty operand must be rejected");
        assert!(
            matches!(&err, DfgError::Parse { message, .. } if message.contains("bad identifier")),
            "wrong error for `{text}`: {err:?}"
        );
    }
    let err = parse("dfg d { input a; N1: s = shl ; output s; }")
        .expect_err("bare keyword must be rejected");
    assert!(
        matches!(&err, DfgError::Parse { message, .. }
            if message.contains("unrecognized expression `shl`")),
        "wrong error: {err:?}"
    );
}

/// Statements that fit no form are named back to the user.
#[test]
fn unrecognized_statements_are_rejected() {
    let err = parse("dfg d { input a; wibble a; }").expect_err("junk must be rejected");
    assert!(
        matches!(&err, DfgError::Parse { message, .. }
            if message.contains("unrecognized statement")),
        "wrong error: {err:?}"
    );
}

/// Outputs and loop edges referencing never-defined values are
/// rejected at the declared line.
#[test]
fn dangling_output_and_loop_are_rejected() {
    let err = parse("dfg d { input a; N1: s = a + a; output t; }")
        .expect_err("dangling output must be rejected");
    assert!(
        matches!(&err, DfgError::Parse { message, .. }
            if message.contains("output `t` is never defined")),
        "wrong error: {err:?}"
    );
    let err = parse("dfg d { input a; N1: s = a + a; output s; loop q -> a; }")
        .expect_err("dangling loop source must be rejected");
    assert!(
        matches!(&err, DfgError::Parse { message, .. }
            if message.contains("loop source `q` is never defined")),
        "wrong error: {err:?}"
    );
}

/// The emitter refuses graphs whose precedence overlay (merge
/// constraints) would be silently lost in text.
#[test]
fn emit_rejects_overlay_arcs() {
    let mut dfg = hlts::benchmarks::ex();
    let ops: Vec<_> = dfg.ops().iter().map(|o| o.id()).collect();
    // Find any pair not already related and order it.
    let mut added = false;
    'outer: for &x in &ops {
        for &y in &ops {
            if x != y && !dfg.reaches(x, y) && !dfg.reaches(y, x) {
                dfg.add_precedence(x, y).expect("acyclic arc");
                added = true;
                break 'outer;
            }
        }
    }
    assert!(added, "ex has independent op pairs");
    let err = emit(&dfg).expect_err("overlay must not emit");
    assert!(
        matches!(&err, DfgError::Parse { message, .. }
            if message.contains("precedence-overlay")),
        "wrong error: {err:?}"
    );
}
