//! Shared helpers for the integration tests: a behavioral interpreter
//! for `Dfg`s and a protocol-driven netlist runner, used to check that
//! synthesized designs still compute their behavior.
#![allow(dead_code)] // each test binary uses a subset of these helpers

use std::collections::HashMap;

use hlts::dfg::{Dfg, OpKind, ValueKind};
use hlts::netlist::{GateKind, Netlist};
use hlts::sched::Schedule;

/// Evaluate the behavior over `bits`-wide two's-complement words.
/// `inputs` maps input names to values. Returns every non-condition
/// defined value (by name), masked to `bits`.
pub fn interpret(dfg: &Dfg, inputs: &HashMap<String, u64>, bits: u32) -> HashMap<String, u64> {
    let mask = if bits == 64 {
        !0u64
    } else {
        (1u64 << bits) - 1
    };
    let mut env: Vec<Option<u64>> = vec![None; dfg.num_values()];
    for v in dfg.values() {
        match v.kind() {
            ValueKind::Input => {
                env[v.id().index()] = Some(inputs.get(v.name()).copied().unwrap_or(0) & mask);
            }
            ValueKind::Const(x) => {
                env[v.id().index()] = Some((x as u64) & mask);
            }
            _ => {}
        }
    }
    for op in dfg.topo_order().expect("acyclic") {
        let op = dfg.op(op);
        let a = env[op.inputs()[0].index()].expect("operand ready");
        let b = op
            .inputs()
            .get(1)
            .map(|v| env[v.index()].expect("operand ready"));
        let r = match op.kind() {
            OpKind::Add => a.wrapping_add(b.unwrap()),
            OpKind::Sub => a.wrapping_sub(b.unwrap()),
            OpKind::Mul => a.wrapping_mul(b.unwrap()),
            OpKind::Lt => u64::from(a < b.unwrap()),
            OpKind::Gt => u64::from(a > b.unwrap()),
            OpKind::Eq => u64::from(a == b.unwrap()),
            OpKind::And => a & b.unwrap(),
            OpKind::Or => a | b.unwrap(),
            OpKind::Xor => a ^ b.unwrap(),
            OpKind::Not => !a,
            OpKind::Shl => a << 1,
            OpKind::Shr => a >> 1,
            _ => a,
        } & mask;
        if let Some(out) = op.output() {
            env[out.index()] = Some(r);
        }
    }
    dfg.values()
        .iter()
        .filter(|v| v.kind().is_output() && !v.is_condition())
        .map(|v| (v.name().to_owned(), env[v.id().index()].expect("computed")))
        .collect()
}

/// A one-pattern cycle simulator over a netlist.
pub struct ProtocolSim {
    nl: Netlist,
    order: Vec<hlts::netlist::GateId>,
    vals: Vec<u64>,
}

impl ProtocolSim {
    pub fn new(mut nl: Netlist) -> Self {
        let order = nl.topo_levels();
        let mut vals = vec![0u64; nl.num_gates()];
        for (i, g) in nl.gates().iter().enumerate() {
            if matches!(g.kind(), GateKind::Const1) {
                vals[i] = !0;
            }
        }
        ProtocolSim { nl, order, vals }
    }

    fn set(&mut self, name: &str, value: u64) {
        let id = self
            .nl
            .inputs()
            .iter()
            .copied()
            .find(|&g| self.nl.name(g) == Some(name))
            .unwrap_or_else(|| panic!("no input {name}"));
        self.vals[id.index()] = value;
    }

    fn settle(&mut self) {
        for &g in &self.order.clone() {
            let ins: Vec<u64> = self
                .nl
                .gate_at(g)
                .inputs()
                .iter()
                .map(|&i| self.vals[i.index()])
                .collect();
            self.vals[g.index()] = self.nl.gate_at(g).kind().eval(&ins);
        }
    }

    fn clock(&mut self) {
        self.settle();
        let next: Vec<(hlts::netlist::GateId, u64)> = self
            .nl
            .dffs()
            .iter()
            .map(|&q| (q, self.vals[self.nl.gate_at(q).inputs()[0].index()]))
            .collect();
        for (q, v) in next {
            self.vals[q.index()] = v;
        }
    }

    fn out_word(&mut self, base: &str, bits: u32) -> Option<u64> {
        self.settle();
        let mut v = 0u64;
        for i in 0..bits {
            let name = format!("{base}[{i}]");
            let g = self.nl.outputs().iter().find(|(n, _)| *n == name)?.1;
            v |= (self.vals[g.index()] & 1) << i;
        }
        Some(v)
    }
}

/// Drive the elaborated design through its schedule protocol (setup via
/// `ctrl_final`, then each step's control line) and collect every
/// output word *at its production time* (an output's register may be
/// time-shared afterwards).
pub fn run_protocol(
    dfg: &Dfg,
    schedule: &Schedule,
    nl: &Netlist,
    inputs: &HashMap<String, u64>,
    bits: u32,
) -> HashMap<String, u64> {
    let mut sim = ProtocolSim::new(nl.clone());
    for v in dfg.values() {
        if matches!(v.kind(), ValueKind::Input) {
            let val = inputs.get(v.name()).copied().unwrap_or(0);
            for i in 0..bits {
                sim.set(&format!("in_{}[{i}]", v.name()), ((val >> i) & 1) * !0u64);
            }
        }
    }
    // Production step (cycle index after which the value is latched):
    // cycle 0 = setup, cycle s+1 runs step s.
    let mut due: HashMap<usize, Vec<String>> = HashMap::new();
    for v in dfg.values() {
        if v.kind().is_output() && !v.is_condition() {
            let def = dfg.def_of(v.id()).expect("outputs are defined");
            due.entry(schedule.step_of(def) + 1)
                .or_default()
                .push(v.name().to_owned());
        }
    }
    let mut outs = HashMap::new();
    // cycle 0: setup
    sim.set("ctrl_final", !0u64);
    sim.clock();
    sim.set("ctrl_final", 0);
    for step in 0..schedule.num_steps() {
        let name = format!("ctrl_S{step}");
        sim.set(&name, !0u64);
        sim.clock();
        sim.set(&name, 0);
        if let Some(names) = due.get(&(step + 1)) {
            for n in names {
                if let Some(v) = sim.out_word(&format!("out_{n}"), bits) {
                    outs.insert(n.clone(), v);
                }
            }
        }
    }
    outs
}
