//! The strongest whole-stack check: a synthesized, gate-elaborated
//! design must still *compute its behavior*. We interpret each
//! benchmark's data-flow graph over random inputs and drive the
//! elaborated netlist through its schedule protocol, comparing every
//! primary output word at its production time.

mod common;

use std::collections::HashMap;

use hlts::core::{baselines, IntegratedSynthesizer, SynthesisParams};
use hlts::etpn::Etpn;
use hlts::netlist::elaborate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn check_equivalence(
    name: &str,
    dfg: &hlts::dfg::Dfg,
    r: &hlts::core::SynthesisResult,
    bits: u32,
    seeds: u64,
) {
    let etpn = Etpn::from_parts(&r.dfg, &r.schedule, &r.allocation).expect("lowerable");
    let nl = elaborate(&r.dfg, &r.schedule, &r.allocation, &etpn, bits).expect("elaborates");
    let mask = (1u64 << bits) - 1;
    let mut rng = StdRng::seed_from_u64(0xE0 + seeds);
    for trial in 0..8 {
        let inputs: HashMap<String, u64> = dfg
            .values()
            .iter()
            .filter(|v| v.kind().is_input())
            .map(|v| (v.name().to_owned(), rng.gen::<u64>() & mask))
            .collect();
        let expected = common::interpret(dfg, &inputs, bits);
        let got = common::run_protocol(&r.dfg, &r.schedule, &nl, &inputs, bits);
        for (out, &want) in &expected {
            let have = got
                .get(out)
                .unwrap_or_else(|| panic!("{name} trial {trial}: output {out} not captured"));
            assert_eq!(
                *have,
                want,
                "{name} trial {trial}: output {out} = {have:#x}, expected {want:#x} \
                 (inputs {inputs:?})\nschedule:\n{}",
                r.schedule.render(&r.dfg)
            );
        }
    }
}

#[test]
fn one_to_one_designs_compute_their_behavior() {
    for (name, dfg) in hlts::benchmarks::all() {
        let state = hlts::core::DesignState::initial(&dfg).expect("initial");
        let r = hlts::core::SynthesisResult {
            metrics: hlts::core::DesignMetrics::of(&state, 8, &hlts::cost::ModuleLibrary::new())
                .expect("metrics"),
            dfg: state.dfg,
            schedule: state.schedule,
            allocation: state.allocation,
            merge_log: Vec::new(),
            testability_stats: Default::default(),
            txn_stats: Default::default(),
        };
        check_equivalence(name, &dfg, &r, 8, 1);
    }
}

#[test]
fn integrated_designs_compute_their_behavior() {
    for (name, dfg) in hlts::benchmarks::all() {
        let r = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8))
            .run(&dfg)
            .expect("synthesis");
        check_equivalence(name, &dfg, &r, 8, 2);
    }
}

#[test]
fn baseline_designs_compute_their_behavior() {
    let p = SynthesisParams::paper_defaults(8);
    for (name, dfg) in hlts::benchmarks::all() {
        let a1 = baselines::approach1(&dfg, &p).expect("approach1");
        check_equivalence(name, &dfg, &a1, 8, 3);
        let a2 = baselines::approach2(&dfg, &p).expect("approach2");
        check_equivalence(name, &dfg, &a2, 8, 4);
        let camad_p = SynthesisParams {
            alpha: 0.1,
            beta: 10.0,
            ..p.clone()
        };
        let cm = baselines::camad(&dfg, &camad_p).expect("camad");
        check_equivalence(name, &dfg, &cm, 8, 5);
    }
}

#[test]
fn equivalence_holds_at_4_and_16_bits() {
    let dfg = hlts::benchmarks::ex();
    for bits in [4u32, 16] {
        let r = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(bits))
            .run(&dfg)
            .expect("synthesis");
        check_equivalence("ex", &dfg, &r, bits, u64::from(bits));
    }
}
