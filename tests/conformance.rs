//! Differential conformance sweep: generated workloads through the
//! full engine matrix (see `hlts::gen::diff` for the pair table).
//!
//! The smoke tier runs on every `cargo test` and keeps debug-build
//! time modest; the full sweep — 128 graphs, ≥ 100 of which is the
//! acceptance bar — is `#[ignore]`d here and driven in release mode by
//! `ci.sh` (debug builds re-audit after every trial-merge rollback,
//! making the sweep an order of magnitude slower there).
//!
//! On failure the panic message carries the `(seed, preset)` pair, a
//! `hlts gen --seed N --preset P | hlts run -` repro line, and the
//! offending graph's full text.

use hlts::gen::diff::{check_preset, ConformanceReport};
use hlts::gen::PRESET_NAMES;

/// Sweep `seeds` seeds of every preset; panics with the self-contained
/// divergence report on the first disagreement.
fn sweep(seeds: u64) -> Vec<ConformanceReport> {
    let mut reports = Vec::new();
    for preset in PRESET_NAMES {
        for seed in 0..seeds {
            match check_preset(preset, seed) {
                Ok(r) => reports.push(r),
                Err(d) => panic!("{d}"),
            }
        }
    }
    reports
}

/// The run was not vacuous: every check ran on every graph, and the
/// sweep as a whole committed merges and computed DSE points.
fn assert_substantive(reports: &[ConformanceReport]) {
    assert!(reports.iter().all(|r| r.checks == 6), "a check was skipped");
    assert!(reports.iter().all(|r| r.ops > 0));
    assert!(
        reports.iter().map(|r| r.merges).sum::<usize>() > 0,
        "no graph exercised the merge loop"
    );
    assert!(reports.iter().all(|r| r.dse_points == 4));
}

/// Every-build smoke: 4 presets × 2 seeds = 8 graphs, zero
/// divergences across all five engine pairs. Kept small because debug
/// builds audit after every rollback (~4 s per graph); ci.sh runs a
/// 32-graph release smoke plus the full 128-graph sweep.
#[test]
fn conformance_smoke() {
    let reports = sweep(2);
    assert_eq!(reports.len(), 8);
    assert_substantive(&reports);
}

/// CI smoke tier: 4 presets × 8 seeds = 32 graphs; `#[ignore]`d from
/// the default debug run, invoked in release mode by ci.sh on every
/// build.
#[test]
#[ignore = "release-mode CI smoke; ci.sh runs it"]
fn conformance_ci_smoke() {
    let reports = sweep(8);
    assert_eq!(reports.len(), 32);
    assert_substantive(&reports);
}

/// The acceptance-bar sweep: 4 presets × 32 seeds = 128 graphs (≥ 100
/// required), zero divergences. Run via
/// `cargo test --release --test conformance -- --ignored` (ci.sh does).
#[test]
#[ignore = "long sweep; ci.sh runs it in release mode"]
fn conformance_full_sweep() {
    let reports = sweep(32);
    assert_eq!(reports.len(), 128);
    assert!(reports.len() >= 100, "acceptance bar: at least 100 graphs");
    assert_substantive(&reports);
}
