//! End-to-end pipeline tests: every benchmark through every synthesis
//! flow, with full structural validation and ETPN/netlist lowering.

mod common;

use hlts::alloc::Allocation;
use hlts::core::{baselines, DesignState, IntegratedSynthesizer, SynthesisParams};
use hlts::etpn::Etpn;
use hlts::netlist::elaborate;
use hlts::sched::Lifetimes;

type FlowFn = Box<dyn Fn(&hlts::dfg::Dfg) -> hlts::core::SynthesisResult>;

fn flows() -> Vec<(&'static str, FlowFn)> {
    let p = SynthesisParams::paper_defaults(8);
    let camad_p = SynthesisParams {
        alpha: 0.1,
        beta: 10.0,
        ..p.clone()
    };
    let p1 = p.clone();
    let p2 = p.clone();
    let p3 = p;
    vec![
        (
            "camad",
            Box::new(move |d| baselines::camad(d, &camad_p).expect("camad")),
        ),
        (
            "approach1",
            Box::new(move |d| baselines::approach1(d, &p1).expect("approach1")),
        ),
        (
            "approach2",
            Box::new(move |d| baselines::approach2(d, &p2).expect("approach2")),
        ),
        (
            "ours",
            Box::new(move |d| IntegratedSynthesizer::new(p3.clone()).run(d).expect("ours")),
        ),
    ]
}

#[test]
fn every_flow_produces_valid_designs_on_every_benchmark() {
    for (bench, dfg) in hlts::benchmarks::all() {
        for (flow, run) in flows() {
            let r = run(&dfg);
            // schedule legal for precedence and binding
            r.schedule
                .validate(&r.dfg)
                .unwrap_or_else(|e| panic!("{bench}/{flow}: {e}"));
            r.schedule
                .validate_groups(&r.dfg, &r.allocation.conflict_groups())
                .unwrap_or_else(|e| panic!("{bench}/{flow}: {e}"));
            // register sharing legal for lifetimes
            let lt = Lifetimes::compute(&r.dfg, &r.schedule);
            r.allocation
                .validate(&r.dfg, &r.schedule, &lt)
                .unwrap_or_else(|e| panic!("{bench}/{flow}: {e}"));
            // lowers to ETPN with consistent execution time
            let etpn = Etpn::from_parts(&r.dfg, &r.schedule, &r.allocation)
                .unwrap_or_else(|e| panic!("{bench}/{flow}: {e}"));
            assert_eq!(
                etpn.execution_time(),
                r.metrics.execution_time,
                "{bench}/{flow}"
            );
            // elaborates to a netlist with state and observability
            let nl = elaborate(&r.dfg, &r.schedule, &r.allocation, &etpn, 4)
                .unwrap_or_else(|e| panic!("{bench}/{flow}: {e}"));
            assert!(!nl.dffs().is_empty(), "{bench}/{flow}");
            assert!(!nl.outputs().is_empty(), "{bench}/{flow}");
        }
    }
}

#[test]
fn integrated_synthesis_strictly_compacts() {
    for (bench, dfg) in hlts::benchmarks::all() {
        let initial = DesignState::initial(&dfg).expect("initial state");
        let r = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8))
            .run(&dfg)
            .expect("synthesis");
        let before = initial.allocation.num_modules() + initial.allocation.num_registers();
        let after = r.allocation.num_modules() + r.allocation.num_registers();
        assert!(
            after < before,
            "{bench}: no compaction ({before} -> {after})"
        );
        assert_eq!(
            r.merge_log.len(),
            before - after,
            "{bench}: one log per merge"
        );
    }
}

#[test]
fn default_allocation_is_one_to_one() {
    for (bench, dfg) in hlts::benchmarks::all() {
        let a = Allocation::one_to_one(&dfg);
        assert_eq!(a.num_modules(), dfg.num_ops(), "{bench}");
        let expected_regs = dfg
            .values()
            .iter()
            .filter(|v| !v.kind().is_const() && !v.is_condition())
            .count();
        assert_eq!(a.num_registers(), expected_regs, "{bench}");
    }
}

#[test]
fn execution_time_never_beats_critical_path() {
    for (bench, dfg) in hlts::benchmarks::all() {
        let cp = dfg.critical_path_len().expect("acyclic");
        for (flow, run) in flows() {
            let r = run(&dfg);
            assert!(
                r.metrics.execution_time >= cp,
                "{bench}/{flow}: E {} below critical path {cp}",
                r.metrics.execution_time
            );
        }
    }
}
